//! Multi-species particle storage: per-species charge/mass and SoA arenas.
//!
//! The paper's data structures were built for one electrostatic species;
//! this module generalizes them following the per-species SoA container
//! approach of SoAx (arXiv:1710.03462): each species keeps its *own*
//! [`ParticlesSoA`] arena — so every existing position/sort/deposit kernel
//! runs on it unchanged — plus a parallel out-of-plane `vz` array that only
//! the 2d3v kernels ([`crate::kernels::boris`], [`crate::kernels::current`])
//! touch. The 2d2v hot path pays nothing for the extension.
//!
//! Velocities in a species arena are always in *physical* units (the
//! multi-species driver does not hoist; see `kernels/boris.rs`).

use crate::grid::Grid2D;
use crate::particles::{initialize_with_rng, InitialDistribution, ParticlesSoA};
use crate::pool::chunk_range;
use crate::rng::Rng;
use crate::sort::{cell_counts_into, cell_starts_into};
use sfc::CellLayout;

/// Static description of one particle species.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeciesDef {
    /// Human-readable label ("electrons", "ions", …); part of the
    /// checkpoint fingerprint.
    pub name: String,
    /// Charge in units of the elementary charge (electron = −1).
    pub charge: f64,
    /// Mass in electron masses.
    pub mass: f64,
    /// Background number density this species contributes (sets the
    /// macro-particle weight `density·Lx·Ly/n`).
    pub density: f64,
    /// Marker count.
    pub n_particles: usize,
    /// Initial phase-space distribution (in-plane; `vz` is sampled with
    /// the same thermal spread).
    pub distribution: InitialDistribution,
}

impl SpeciesDef {
    /// An electron species (q = −1, m = 1, unit density).
    pub fn electrons(n: usize, distribution: InitialDistribution) -> Self {
        Self {
            name: "electrons".into(),
            charge: -1.0,
            mass: 1.0,
            density: 1.0,
            n_particles: n,
            distribution,
        }
    }

    /// A singly-charged ion species with the given (reduced) mass ratio.
    pub fn ions(n: usize, mass: f64, distribution: InitialDistribution) -> Self {
        Self {
            name: "ions".into(),
            charge: 1.0,
            mass,
            density: 1.0,
            n_particles: n,
            distribution,
        }
    }

    /// Rename the species (labels must be unique within a config).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Scale the background density (and thus the particle weight).
    pub fn with_density(mut self, density: f64) -> Self {
        self.density = density;
        self
    }
}

/// One species' live storage: the classic SoA arena plus `vz`, with
/// caller-invisible sort scratch so the counting sort stays allocation-free
/// at steady state.
#[derive(Debug, Clone)]
pub struct SpeciesArena {
    /// The static definition.
    pub def: SpeciesDef,
    /// In-plane SoA storage — the exact shape every 2d2v kernel expects.
    pub p: ParticlesSoA,
    /// Out-of-plane velocities, index-parallel with `p`.
    pub vz: Vec<f64>,
    /// Macro-particle weight `density·Lx·Ly/n`.
    pub weight: f64,
    scratch: ParticlesSoA,
    vz_scratch: Vec<f64>,
    counts: Vec<u32>,
    starts: Vec<u32>,
    cursor: Vec<u32>,
}

impl SpeciesArena {
    /// Initialize a species on `grid` under `layout`, drawing positions
    /// and all three velocity components from `rng` (deterministic in the
    /// stream position; species initialized in order share one stream).
    ///
    /// An optional `slice = (rank, nranks)` keeps only this rank's
    /// contiguous index range — the replicated-decomposition convention
    /// where every rank owns `1/nranks` of each species and the deposited
    /// ρ/J are summed by an allreduce.
    pub fn initialize(
        def: SpeciesDef,
        grid: &Grid2D,
        layout: &dyn CellLayout,
        rng: &mut Rng,
        slice: Option<(usize, usize)>,
    ) -> Self {
        let n = def.n_particles;
        let mut p = initialize_with_rng(grid, layout, def.distribution, n, rng);
        let vt = def.distribution.thermal_spread();
        let mut vz: Vec<f64> = (0..n).map(|_| vt * rng.normal()).collect();
        if let Some((rank, nranks)) = slice {
            let (s, e) = chunk_range(n, nranks, rank);
            p = slice_soa(&p, s, e);
            vz = vz[s..e].to_vec();
        }
        let weight = def.density * grid.lx * grid.ly / n as f64;
        Self {
            def,
            p,
            vz,
            weight,
            scratch: ParticlesSoA::default(),
            vz_scratch: Vec::new(),
            counts: Vec::new(),
            starts: Vec::new(),
            cursor: Vec::new(),
        }
    }

    /// Build an arena directly from checkpointed storage.
    pub fn from_parts(def: SpeciesDef, p: ParticlesSoA, vz: Vec<f64>, grid: &Grid2D) -> Self {
        assert_eq!(p.len(), vz.len(), "vz must be index-parallel with p");
        let weight = def.density * grid.lx * grid.ly / def.n_particles as f64;
        Self {
            def,
            p,
            vz,
            weight,
            scratch: ParticlesSoA::default(),
            vz_scratch: Vec::new(),
            counts: Vec::new(),
            starts: Vec::new(),
            cursor: Vec::new(),
        }
    }

    /// Marker count in this arena (after any replication slice).
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True when the arena holds no markers.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// The signed grid-deposit factor `weight·q/(Δx·Δy)` — what one marker
    /// adds to ρ (times a CIC weight) or to J (times a CIC weight and a
    /// velocity component).
    pub fn deposit_weight(&self, grid: &Grid2D) -> f64 {
        self.weight * self.def.charge / (grid.dx() * grid.dy())
    }

    /// Stable counting sort by `icell` carrying `vz` along with the seven
    /// SoA arrays — the out-of-place sort of the paper extended to the
    /// 2d3v arena. Allocation-free once the scratch buffers are sized.
    pub fn sort(&mut self, ncells: usize) {
        let n = self.p.len();
        if self.scratch.len() != n {
            self.scratch = ParticlesSoA::zeroed(n);
        }
        if self.vz_scratch.len() != n {
            self.vz_scratch = vec![0.0; n];
        }
        if self.counts.len() < ncells {
            self.counts = vec![0; ncells];
            self.starts = vec![0; ncells + 1];
            self.cursor = vec![0; ncells];
        }
        cell_counts_into(&self.p.icell, &mut self.counts[..ncells]);
        cell_starts_into(&self.counts[..ncells], &mut self.starts[..ncells + 1]);
        self.cursor[..ncells].copy_from_slice(&self.starts[..ncells]);
        let p = &self.p;
        let s = &mut self.scratch;
        let vz = &self.vz;
        let vzs = &mut self.vz_scratch;
        for (i, &vzi) in vz.iter().enumerate().take(n) {
            let c = p.icell[i] as usize;
            let dst = self.cursor[c] as usize;
            self.cursor[c] += 1;
            s.icell[dst] = p.icell[i];
            s.ix[dst] = p.ix[i];
            s.iy[dst] = p.iy[i];
            s.dx[dst] = p.dx[i];
            s.dy[dst] = p.dy[i];
            s.vx[dst] = p.vx[i];
            s.vy[dst] = p.vy[i];
            vzs[dst] = vzi;
        }
        std::mem::swap(&mut self.p, &mut self.scratch);
        std::mem::swap(&mut self.vz, &mut self.vz_scratch);
    }
}

/// Copy the index range `[s, e)` of a [`ParticlesSoA`].
fn slice_soa(p: &ParticlesSoA, s: usize, e: usize) -> ParticlesSoA {
    ParticlesSoA {
        icell: p.icell[s..e].to_vec(),
        ix: p.ix[s..e].to_vec(),
        iy: p.iy[s..e].to_vec(),
        dx: p.dx[s..e].to_vec(),
        dy: p.dy[s..e].to_vec(),
        vx: p.vx[s..e].to_vec(),
        vy: p.vy[s..e].to_vec(),
    }
}

/// A mutable view over one contiguous range of a species arena — the 2d3v
/// counterpart of [`crate::kernels::SoaViewMut`], carrying `vz`.
pub struct SpeciesViewMut<'a> {
    /// Cell indices.
    pub icell: &'a mut [u32],
    /// Cell x-coordinates.
    pub ix: &'a mut [u32],
    /// Cell y-coordinates.
    pub iy: &'a mut [u32],
    /// In-cell x offsets.
    pub dx: &'a mut [f64],
    /// In-cell y offsets.
    pub dy: &'a mut [f64],
    /// x velocities.
    pub vx: &'a mut [f64],
    /// y velocities.
    pub vy: &'a mut [f64],
    /// z velocities.
    pub vz: &'a mut [f64],
}

/// Split a species arena into `nchunks` disjoint contiguous views using
/// the same [`chunk_range`] partition as the pooled deposit, so the push
/// and deposit fan-outs see identical ranges.
pub fn split_species_mut<'a>(
    p: &'a mut ParticlesSoA,
    vz: &'a mut [f64],
    nchunks: usize,
) -> Vec<SpeciesViewMut<'a>> {
    let n = p.len();
    assert_eq!(vz.len(), n);
    let mut out = Vec::with_capacity(nchunks);
    let (mut icell, mut ix, mut iy) = (&mut p.icell[..], &mut p.ix[..], &mut p.iy[..]);
    let (mut dx, mut dy) = (&mut p.dx[..], &mut p.dy[..]);
    let (mut vx, mut vy, mut vz) = (&mut p.vx[..], &mut p.vy[..], vz);
    let mut taken = 0usize;
    for c in 0..nchunks {
        let (s, e) = chunk_range(n, nchunks, c);
        let len = e - s;
        debug_assert_eq!(s, taken);
        taken += len;
        let (a, rest) = icell.split_at_mut(len);
        icell = rest;
        let (b, rest) = ix.split_at_mut(len);
        ix = rest;
        let (c2, rest) = iy.split_at_mut(len);
        iy = rest;
        let (d, rest) = dx.split_at_mut(len);
        dx = rest;
        let (e2, rest) = dy.split_at_mut(len);
        dy = rest;
        let (f, rest) = vx.split_at_mut(len);
        vx = rest;
        let (g, rest) = vy.split_at_mut(len);
        vy = rest;
        let (h, rest) = vz.split_at_mut(len);
        vz = rest;
        out.push(SpeciesViewMut {
            icell: a,
            ix: b,
            iy: c2,
            dx: d,
            dy: e2,
            vx: f,
            vy: g,
            vz: h,
        });
    }
    out
}

/// Zeroth/first/second velocity moments of one species, in physical units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeciesMoments {
    /// Zeroth moment: total physical particle count `n·w`.
    pub number: f64,
    /// Total charge `q·n·w` (exactly conserved — markers are never lost).
    pub charge: f64,
    /// First moment: total momentum `m·w·Σv`, per component.
    pub momentum: [f64; 3],
    /// Mean velocity, per component.
    pub mean_v: [f64; 3],
    /// Second central moment: temperature `m·⟨(v−⟨v⟩)²⟩`, per component.
    pub temperature: [f64; 3],
    /// Kinetic energy `½·m·w·Σ|v|²`.
    pub kinetic: f64,
}

/// Compute the velocity moments of one species arena.
pub fn species_moments(arena: &SpeciesArena) -> SpeciesMoments {
    let n = arena.len();
    let (m, w) = (arena.def.mass, arena.weight);
    let mut sum = [0.0f64; 3];
    let mut sumsq = [0.0f64; 3];
    let comps: [&[f64]; 3] = [&arena.p.vx, &arena.p.vy, &arena.vz];
    for (c, vs) in comps.iter().enumerate() {
        for &v in vs.iter() {
            sum[c] += v;
            sumsq[c] += v * v;
        }
    }
    let nf = (n as f64).max(1.0);
    let mean = [sum[0] / nf, sum[1] / nf, sum[2] / nf];
    // Two-pass central moment: `Σ(v−⟨v⟩)²` avoids the catastrophic
    // cancellation of `⟨v²⟩−⟨v⟩²` for cold drifting populations.
    let mut central = [0.0f64; 3];
    for (c, vs) in comps.iter().enumerate() {
        for &v in vs.iter() {
            let d = v - mean[c];
            central[c] += d * d;
        }
    }
    let temperature = [
        m * central[0] / nf,
        m * central[1] / nf,
        m * central[2] / nf,
    ];
    SpeciesMoments {
        number: n as f64 * w,
        charge: arena.def.charge * n as f64 * w,
        momentum: [m * w * sum[0], m * w * sum[1], m * w * sum[2]],
        mean_v: mean,
        temperature,
        kinetic: 0.5 * m * w * (sumsq[0] + sumsq[1] + sumsq[2]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc::RowMajor;

    fn grid() -> Grid2D {
        Grid2D::new(16, 16, 8.0, 8.0).unwrap()
    }

    #[test]
    fn initialize_samples_vz_with_thermal_spread() {
        let g = grid();
        let l = RowMajor::new(16, 16).unwrap();
        let def = SpeciesDef::ions(
            20_000,
            25.0,
            InitialDistribution::DriftingMaxwellian {
                alpha: 0.0,
                k: 1.0,
                v0x: 0.0,
                vt: 0.05,
            },
        );
        let mut rng = Rng::seed_from_u64(1);
        let a = SpeciesArena::initialize(def, &g, &l, &mut rng, None);
        let n = a.len() as f64;
        let var: f64 = a.vz.iter().map(|v| v * v).sum::<f64>() / n;
        assert!(
            (var.sqrt() - 0.05).abs() < 0.005,
            "vz spread {}",
            var.sqrt()
        );
    }

    #[test]
    fn sort_carries_vz() {
        let g = grid();
        let l = RowMajor::new(16, 16).unwrap();
        let def = SpeciesDef::electrons(5000, InitialDistribution::Uniform);
        let mut rng = Rng::seed_from_u64(2);
        let mut a = SpeciesArena::initialize(def, &g, &l, &mut rng, None);
        // Tag each particle: vz = f(icell, vx) so the pairing survives any
        // permutation check.
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        for i in 0..a.len() {
            a.vz[i] = a.p.vx[i] * 3.0 + 1.0;
            pairs.push((a.p.vx[i].to_bits(), a.vz[i].to_bits()));
        }
        pairs.sort_unstable();
        a.sort(256);
        assert!(crate::sort::is_sorted_by_cell(&a.p));
        let mut after: Vec<(u64, u64)> = (0..a.len())
            .map(|i| (a.p.vx[i].to_bits(), a.vz[i].to_bits()))
            .collect();
        after.sort_unstable();
        assert_eq!(pairs, after);
    }

    #[test]
    fn replication_slices_partition_the_species() {
        let g = grid();
        let l = RowMajor::new(16, 16).unwrap();
        let def = SpeciesDef::electrons(1001, InitialDistribution::Uniform);
        let whole = {
            let mut rng = Rng::seed_from_u64(3);
            SpeciesArena::initialize(def.clone(), &g, &l, &mut rng, None)
        };
        let mut total = 0usize;
        let mut vx_cat: Vec<f64> = Vec::new();
        for rank in 0..3 {
            let mut rng = Rng::seed_from_u64(3);
            let part = SpeciesArena::initialize(def.clone(), &g, &l, &mut rng, Some((rank, 3)));
            total += part.len();
            vx_cat.extend_from_slice(&part.p.vx);
        }
        assert_eq!(total, 1001);
        assert_eq!(vx_cat, whole.p.vx);
    }

    #[test]
    fn moments_of_a_cold_drifting_species() {
        let g = grid();
        let l = RowMajor::new(16, 16).unwrap();
        let def = SpeciesDef::electrons(
            4000,
            InitialDistribution::DriftingMaxwellian {
                alpha: 0.0,
                k: 1.0,
                v0x: 2.0,
                vt: 1e-12,
            },
        );
        let mut rng = Rng::seed_from_u64(4);
        let a = SpeciesArena::initialize(def, &g, &l, &mut rng, None);
        let m = species_moments(&a);
        assert!((m.mean_v[0] - 2.0).abs() < 1e-9);
        assert!(m.mean_v[1].abs() < 1e-9);
        assert!(m.temperature[0] < 1e-20);
        // number = n·w = density·Lx·Ly.
        assert!((m.number - 64.0).abs() < 1e-9);
        assert!((m.charge + 64.0).abs() < 1e-9);
        // kinetic ≈ ½·w·n·v0² = ½·64·4.
        assert!((m.kinetic - 128.0).abs() < 1e-6);
    }

    #[test]
    fn split_species_views_cover_all_particles() {
        let g = grid();
        let l = RowMajor::new(16, 16).unwrap();
        let def = SpeciesDef::electrons(103, InitialDistribution::Uniform);
        let mut rng = Rng::seed_from_u64(5);
        let mut a = SpeciesArena::initialize(def, &g, &l, &mut rng, None);
        let views = split_species_mut(&mut a.p, &mut a.vz, 4);
        let total: usize = views.iter().map(|v| v.icell.len()).sum();
        assert_eq!(total, 103);
        for v in &views {
            assert_eq!(v.vz.len(), v.icell.len());
        }
    }
}
