//! Self-contained pseudo-random number generation.
//!
//! The build targets machines with no network access to a crate registry,
//! so the library carries its own small, well-known generators instead of
//! depending on `rand`:
//!
//! * [`splitmix64`] — the stateless 64-bit finalizer of Steele, Lea &
//!   Flood. Used directly for hashing (fault plans, checksum salts) and to
//!   seed the main generator.
//! * [`Rng`] — xoshiro256++ (Blackman & Vigna), a fast, high-quality
//!   general-purpose generator with a 256-bit state. Deterministic in its
//!   seed; the state is exposed so checkpoints can capture and restore it
//!   bit-exactly.
//!
//! All floating-point draws use the conventional 53-bit mantissa
//! construction, so sequences are identical on every platform.

/// One step of the splitmix64 sequence starting at `x`; returns the mixed
/// output. Also usable as a 64-bit hash finalizer.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary sequence of 64-bit words down to one word
/// (splitmix64-based chaining). Deterministic and order-sensitive.
pub fn hash_words(seed: u64, words: &[u64]) -> u64 {
    let mut h = splitmix64(seed);
    for &w in words {
        h = splitmix64(h ^ w);
    }
    h
}

/// xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Seed deterministically via splitmix64 expansion (the seeding scheme
    /// recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(s);
        }
        // An all-zero state is the one invalid seed for xoshiro.
        if state == [0; 4] {
            state = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { state }
    }

    /// The raw 256-bit state (for checkpointing).
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuild from a checkpointed state. An all-zero state (which xoshiro
    /// cannot escape) is replaced with a fixed nonzero one.
    pub fn from_state(state: [u64; 4]) -> Self {
        if state == [0; 4] {
            Self::seed_from_u64(0)
        } else {
            Self { state }
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`. `hi` must exceed `lo`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi > lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift (unbiased
    /// enough for simulation sampling; exact rejection is not needed here).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Fair coin flip.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Standard normal via Box–Muller on two uniform draws. The first draw
    /// is clamped away from zero so the logarithm is finite.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(f64::EPSILON);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_sequence() {
        let mut a = Rng::seed_from_u64(42);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut r = Rng::seed_from_u64(2);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| r.uniform()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(3);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let k = r.below(8) as usize;
            assert!(k < 8);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut r = Rng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| r.coin()).count();
        assert!((4700..5300).contains(&heads), "heads {heads}");
    }

    #[test]
    fn hash_words_is_order_sensitive() {
        assert_ne!(hash_words(0, &[1, 2]), hash_words(0, &[2, 1]));
        assert_eq!(hash_words(9, &[1, 2]), hash_words(9, &[1, 2]));
        assert_ne!(hash_words(9, &[1, 2]), hash_words(10, &[1, 2]));
    }
}
