//! Periodic particle sorting by cell index (paper §II and §V-B1).
//!
//! The number of cells is far smaller than the number of particles, so a
//! counting (bucket) sort runs in `O(N)`:
//!
//! * [`sort_out_of_place`] — count, prefix-sum, scatter into a second
//!   buffer. One store per particle; the variant the paper measures to be
//!   ~2× faster than in-place (at the cost of a second particle array).
//! * [`sort_in_place`] — cycle-chasing counting sort; no extra array but
//!   roughly three moves per displaced particle.
//! * [`par_sort_out_of_place`] — the paper's thread parallelization: the
//!   *cells* are partitioned into contiguous ranges, one per task; because
//!   the destination of a cell range is a contiguous slice of the output
//!   array, every task writes disjoint memory. Each task scans the whole
//!   particle array (the paper accepts this read amplification).

use crate::par;
use crate::particles::ParticlesSoA;

/// Histogram of particles per cell. `ncells` must exceed every `icell`.
pub fn cell_counts(icell: &[u32], ncells: usize) -> Vec<u32> {
    let mut counts = vec![0u32; ncells];
    for &c in icell {
        counts[c as usize] += 1;
    }
    counts
}

/// Exclusive prefix sum of the histogram: `starts[c]` = first output slot of
/// cell `c`. The returned vector has `ncells + 1` entries (the last is `n`).
pub fn cell_starts(counts: &[u32]) -> Vec<u32> {
    let mut starts = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    starts.push(0);
    for &c in counts {
        acc += c;
        starts.push(acc);
    }
    starts
}

/// Out-of-place counting sort. `scratch` is resized as needed and holds the
/// sorted result, which is swapped back into `p`.
pub fn sort_out_of_place(p: &mut ParticlesSoA, scratch: &mut ParticlesSoA, ncells: usize) {
    let n = p.len();
    if scratch.len() != n {
        *scratch = ParticlesSoA::zeroed(n);
    }
    let counts = cell_counts(&p.icell, ncells);
    let starts = cell_starts(&counts);
    let mut cursor: Vec<u32> = starts[..ncells].to_vec();
    for i in 0..n {
        let c = p.icell[i] as usize;
        let dst = cursor[c] as usize;
        cursor[c] += 1;
        scratch.icell[dst] = p.icell[i];
        scratch.ix[dst] = p.ix[i];
        scratch.iy[dst] = p.iy[i];
        scratch.dx[dst] = p.dx[i];
        scratch.dy[dst] = p.dy[i];
        scratch.vx[dst] = p.vx[i];
        scratch.vy[dst] = p.vy[i];
    }
    std::mem::swap(p, scratch);
}

/// In-place cycle-chasing counting sort (no scratch array; ~3 moves per
/// displaced particle — the paper's measured 2× slower variant).
pub fn sort_in_place(p: &mut ParticlesSoA, ncells: usize) {
    let counts = cell_counts(&p.icell, ncells);
    let starts = cell_starts(&counts);
    // `next[c]`: next free slot within cell c's output range.
    let mut next: Vec<u32> = starts[..ncells].to_vec();
    // Walk output slots; for each, chase the displacement cycle.
    for cell in 0..ncells {
        let end = starts[cell + 1];
        while next[cell] < end {
            let i = next[cell] as usize;
            let c = p.icell[i] as usize;
            if c == cell {
                next[cell] += 1;
            } else {
                // Swap particle i to its destination cell's cursor.
                let j = next[c] as usize;
                next[c] += 1;
                p.icell.swap(i, j);
                p.ix.swap(i, j);
                p.iy.swap(i, j);
                p.dx.swap(i, j);
                p.dy.swap(i, j);
                p.vx.swap(i, j);
                p.vy.swap(i, j);
            }
        }
    }
}

/// Parallel out-of-place counting sort (the paper's cell-partitioned
/// scheme). `ntasks` controls the cell partition; each task scans the whole
/// input but writes only its own contiguous output range.
pub fn par_sort_out_of_place(
    p: &mut ParticlesSoA,
    scratch: &mut ParticlesSoA,
    ncells: usize,
    ntasks: usize,
) {
    let n = p.len();
    if scratch.len() != n {
        *scratch = ParticlesSoA::zeroed(n);
    }
    let counts = cell_counts(&p.icell, ncells);
    let starts = cell_starts(&counts);

    // Partition cells into `ntasks` contiguous ranges with near-equal
    // particle counts (greedy sweep).
    let ntasks = ntasks.max(1).min(ncells);
    let target = n.div_ceil(ntasks).max(1);
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(ntasks);
    let mut begin = 0usize;
    let mut acc = 0usize;
    for (cell, &count) in counts.iter().enumerate() {
        acc += count as usize;
        if acc >= target && ranges.len() + 1 < ntasks {
            ranges.push((begin, cell + 1));
            begin = cell + 1;
            acc = 0;
        }
    }
    ranges.push((begin, ncells));

    // Split the scratch arrays at the range boundaries so each task owns a
    // disjoint contiguous output slice.
    struct OutSlices<'a> {
        icell: &'a mut [u32],
        ix: &'a mut [u32],
        iy: &'a mut [u32],
        dx: &'a mut [f64],
        dy: &'a mut [f64],
        vx: &'a mut [f64],
        vy: &'a mut [f64],
    }
    let mut outs: Vec<(usize, usize, OutSlices<'_>)> = Vec::with_capacity(ranges.len());
    {
        let (mut icell, mut ix, mut iy, mut dx, mut dy, mut vx, mut vy) = (
            scratch.icell.as_mut_slice(),
            scratch.ix.as_mut_slice(),
            scratch.iy.as_mut_slice(),
            scratch.dx.as_mut_slice(),
            scratch.dy.as_mut_slice(),
            scratch.vx.as_mut_slice(),
            scratch.vy.as_mut_slice(),
        );
        let mut consumed = 0usize;
        for &(c0, c1) in &ranges {
            let len = starts[c1] as usize - starts[c0] as usize;
            let (a1, b1) = icell.split_at_mut(len);
            icell = b1;
            let (a2, b2) = ix.split_at_mut(len);
            ix = b2;
            let (a3, b3) = iy.split_at_mut(len);
            iy = b3;
            let (a4, b4) = dx.split_at_mut(len);
            dx = b4;
            let (a5, b5) = dy.split_at_mut(len);
            dy = b5;
            let (a6, b6) = vx.split_at_mut(len);
            vx = b6;
            let (a7, b7) = vy.split_at_mut(len);
            vy = b7;
            outs.push((
                c0,
                c1,
                OutSlices {
                    icell: a1,
                    ix: a2,
                    iy: a3,
                    dx: a4,
                    dy: a5,
                    vx: a6,
                    vy: a7,
                },
            ));
            consumed += len;
        }
        debug_assert_eq!(consumed, n);
    }

    let pi = &*p;
    par::for_each(outs, |(c0, c1, out)| {
        let base = starts[c0] as usize;
        // Local cursors relative to this task's slice.
        let mut cursor: Vec<u32> = (starts[c0..c1]).iter().map(|&s| s - base as u32).collect();
        for i in 0..n {
            let c = pi.icell[i] as usize;
            if c >= c0 && c < c1 {
                let k = c - c0;
                let dst = cursor[k] as usize;
                cursor[k] += 1;
                out.icell[dst] = pi.icell[i];
                out.ix[dst] = pi.ix[i];
                out.iy[dst] = pi.iy[i];
                out.dx[dst] = pi.dx[i];
                out.dy[dst] = pi.dy[i];
                out.vx[dst] = pi.vx[i];
                out.vy[dst] = pi.vy[i];
            }
        }
    });
    std::mem::swap(p, scratch);
}

/// True if particles are sorted by cell index (diagnostic).
pub fn is_sorted_by_cell(p: &ParticlesSoA) -> bool {
    p.icell.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize, ncells: usize, seed: u64) -> ParticlesSoA {
        let mut p = ParticlesSoA::zeroed(n);
        let mut s = seed | 1;
        for i in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let c = (s % ncells as u64) as u32;
            p.icell[i] = c;
            p.ix[i] = c / 8;
            p.iy[i] = c % 8;
            p.dx[i] = (i as f64 * 0.37) % 1.0;
            p.vx[i] = i as f64; // unique payload to check permutation fidelity
        }
        p
    }

    fn payload_multiset(p: &ParticlesSoA) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = (0..p.len())
            .map(|i| (p.icell[i], p.vx[i].to_bits()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn out_of_place_sorts_and_permutes() {
        let mut p = mk(5000, 64, 42);
        let before = payload_multiset(&p);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 64);
        assert!(is_sorted_by_cell(&p));
        assert_eq!(payload_multiset(&p), before);
    }

    #[test]
    fn out_of_place_is_stable() {
        // Counting sort with a forward scan is stable: equal cells keep
        // their relative order (vx payload ascends within each cell).
        let mut p = mk(2000, 16, 7);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 16);
        for w in 0..p.len() - 1 {
            if p.icell[w] == p.icell[w + 1] {
                assert!(p.vx[w] < p.vx[w + 1], "stability broken at {w}");
            }
        }
    }

    #[test]
    fn in_place_sorts_and_permutes() {
        let mut p = mk(5000, 64, 43);
        let before = payload_multiset(&p);
        sort_in_place(&mut p, 64);
        assert!(is_sorted_by_cell(&p));
        assert_eq!(payload_multiset(&p), before);
    }

    #[test]
    fn parallel_sorts_and_permutes() {
        for ntasks in [1usize, 2, 3, 8, 64] {
            let mut p = mk(3000, 64, 44);
            let before = payload_multiset(&p);
            let mut scratch = ParticlesSoA::zeroed(0);
            par_sort_out_of_place(&mut p, &mut scratch, 64, ntasks);
            assert!(is_sorted_by_cell(&p), "ntasks={ntasks}");
            assert_eq!(payload_multiset(&p), before, "ntasks={ntasks}");
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        // Same stable order, not just sorted.
        let mut a = mk(3000, 32, 45);
        let mut b = a.clone();
        let mut s1 = ParticlesSoA::zeroed(0);
        let mut s2 = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut a, &mut s1, 32);
        par_sort_out_of_place(&mut b, &mut s2, 32, 4);
        assert_eq!(a.icell, b.icell);
        assert_eq!(a.vx, b.vx);
    }

    #[test]
    fn already_sorted_is_noop_permutation() {
        let mut p = mk(1000, 16, 46);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 16);
        let snapshot = p.clone();
        sort_in_place(&mut p, 16);
        assert_eq!(p.icell, snapshot.icell);
        assert_eq!(p.vx, snapshot.vx);
    }

    #[test]
    fn empty_and_single() {
        let mut p = ParticlesSoA::zeroed(0);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 16);
        sort_in_place(&mut p, 16);
        assert!(p.is_empty());

        let mut p = mk(1, 16, 47);
        sort_in_place(&mut p, 16);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn all_same_cell() {
        let mut p = mk(100, 64, 48);
        p.icell.fill(5);
        let before = payload_multiset(&p);
        sort_in_place(&mut p, 64);
        assert_eq!(payload_multiset(&p), before);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 64);
        assert_eq!(payload_multiset(&p), before);
    }

    #[test]
    fn counts_and_starts() {
        let icell = vec![2u32, 0, 2, 3, 2];
        let counts = cell_counts(&icell, 4);
        assert_eq!(counts, vec![1, 0, 3, 1]);
        let starts = cell_starts(&counts);
        assert_eq!(starts, vec![0, 1, 1, 4, 5]);
    }
}
