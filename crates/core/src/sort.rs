//! Periodic particle sorting by cell index (paper §II and §V-B1).
//!
//! The number of cells is far smaller than the number of particles, so a
//! counting (bucket) sort runs in `O(N)`:
//!
//! * [`sort_out_of_place`] — count, prefix-sum, scatter into a second
//!   buffer. One store per particle; the variant the paper measures to be
//!   ~2× faster than in-place (at the cost of a second particle array).
//! * [`sort_in_place`] — cycle-chasing counting sort; no extra array but
//!   roughly three moves per displaced particle.
//! * [`par_sort_out_of_place`] — the paper's thread parallelization: the
//!   *cells* are partitioned into contiguous ranges, one per task; because
//!   the destination of a cell range is a contiguous slice of the output
//!   array, every task writes disjoint memory. Each task scans the whole
//!   particle array (the paper accepts this read amplification).

use crate::par;
use crate::particles::ParticlesSoA;
use crate::pool::{ThreadPool, MAX_THREADS};

/// Histogram of particles per cell. `ncells` must exceed every `icell`.
pub fn cell_counts(icell: &[u32], ncells: usize) -> Vec<u32> {
    let mut counts = vec![0u32; ncells];
    cell_counts_into(icell, &mut counts);
    counts
}

/// Fill an existing histogram buffer (allocation-free [`cell_counts`]).
pub fn cell_counts_into(icell: &[u32], counts: &mut [u32]) {
    counts.fill(0);
    for &c in icell {
        counts[c as usize] += 1;
    }
}

/// Exclusive prefix sum of the histogram: `starts[c]` = first output slot of
/// cell `c`. The returned vector has `ncells + 1` entries (the last is `n`).
pub fn cell_starts(counts: &[u32]) -> Vec<u32> {
    let mut starts = vec![0u32; counts.len() + 1];
    cell_starts_into(counts, &mut starts);
    starts
}

/// Fill an existing prefix-sum buffer of `counts.len() + 1` entries
/// (allocation-free [`cell_starts`]).
pub fn cell_starts_into(counts: &[u32], starts: &mut [u32]) {
    assert_eq!(starts.len(), counts.len() + 1);
    let mut acc = 0u32;
    starts[0] = 0;
    for (c, s) in counts.iter().zip(&mut starts[1..]) {
        acc += c;
        *s = acc;
    }
}

/// Reusable scratch buffers for the counting sorts: the per-cell histogram,
/// prefix sums, and write cursors that the plain entry points allocate per
/// call. Owned by the simulation so steady-state sorting allocates nothing
/// once the arena has grown to the grid size.
#[derive(Debug, Default, Clone)]
pub struct SortArena {
    counts: Vec<u32>,
    starts: Vec<u32>,
    cursor: Vec<u32>,
}

impl SortArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the buffers to cover `ncells` (no-op, and no allocation, once
    /// large enough).
    pub fn ensure(&mut self, ncells: usize) {
        if self.counts.len() < ncells {
            self.counts.resize(ncells, 0);
            self.cursor.resize(ncells, 0);
        }
        if self.starts.len() < ncells + 1 {
            self.starts.resize(ncells + 1, 0);
        }
    }
}

/// Out-of-place counting sort. `scratch` is resized as needed and holds the
/// sorted result, which is swapped back into `p`.
pub fn sort_out_of_place(p: &mut ParticlesSoA, scratch: &mut ParticlesSoA, ncells: usize) {
    let mut arena = SortArena::new();
    sort_out_of_place_with(p, scratch, ncells, &mut arena);
}

/// [`sort_out_of_place`] with caller-owned scratch buffers: allocation-free
/// when `arena` has seen `ncells` before and `scratch` is already sized.
pub fn sort_out_of_place_with(
    p: &mut ParticlesSoA,
    scratch: &mut ParticlesSoA,
    ncells: usize,
    arena: &mut SortArena,
) {
    let n = p.len();
    if scratch.len() != n {
        *scratch = ParticlesSoA::zeroed(n);
    }
    arena.ensure(ncells);
    cell_counts_into(&p.icell, &mut arena.counts[..ncells]);
    cell_starts_into(&arena.counts[..ncells], &mut arena.starts[..ncells + 1]);
    arena.cursor[..ncells].copy_from_slice(&arena.starts[..ncells]);
    let cursor = &mut arena.cursor;
    for i in 0..n {
        let c = p.icell[i] as usize;
        let dst = cursor[c] as usize;
        cursor[c] += 1;
        scratch.icell[dst] = p.icell[i];
        scratch.ix[dst] = p.ix[i];
        scratch.iy[dst] = p.iy[i];
        scratch.dx[dst] = p.dx[i];
        scratch.dy[dst] = p.dy[i];
        scratch.vx[dst] = p.vx[i];
        scratch.vy[dst] = p.vy[i];
    }
    std::mem::swap(p, scratch);
}

/// In-place cycle-chasing counting sort (no scratch array; ~3 moves per
/// displaced particle — the paper's measured 2× slower variant).
pub fn sort_in_place(p: &mut ParticlesSoA, ncells: usize) {
    let mut arena = SortArena::new();
    sort_in_place_with(p, ncells, &mut arena);
}

/// [`sort_in_place`] with caller-owned scratch buffers (allocation-free in
/// steady state).
pub fn sort_in_place_with(p: &mut ParticlesSoA, ncells: usize, arena: &mut SortArena) {
    arena.ensure(ncells);
    cell_counts_into(&p.icell, &mut arena.counts[..ncells]);
    cell_starts_into(&arena.counts[..ncells], &mut arena.starts[..ncells + 1]);
    let starts = &arena.starts;
    // `next[c]`: next free slot within cell c's output range.
    arena.cursor[..ncells].copy_from_slice(&starts[..ncells]);
    let next = &mut arena.cursor;
    // Walk output slots; for each, chase the displacement cycle.
    for cell in 0..ncells {
        let end = starts[cell + 1];
        while next[cell] < end {
            let i = next[cell] as usize;
            let c = p.icell[i] as usize;
            if c == cell {
                next[cell] += 1;
            } else {
                // Swap particle i to its destination cell's cursor.
                let j = next[c] as usize;
                next[c] += 1;
                p.icell.swap(i, j);
                p.ix.swap(i, j);
                p.iy.swap(i, j);
                p.dx.swap(i, j);
                p.dy.swap(i, j);
                p.vx.swap(i, j);
                p.vy.swap(i, j);
            }
        }
    }
}

/// Parallel out-of-place counting sort (the paper's cell-partitioned
/// scheme). `ntasks` controls the cell partition; each task scans the whole
/// input but writes only its own contiguous output range.
pub fn par_sort_out_of_place(
    p: &mut ParticlesSoA,
    scratch: &mut ParticlesSoA,
    ncells: usize,
    ntasks: usize,
) {
    let n = p.len();
    if scratch.len() != n {
        *scratch = ParticlesSoA::zeroed(n);
    }
    let counts = cell_counts(&p.icell, ncells);
    let starts = cell_starts(&counts);

    // Partition cells into `ntasks` contiguous ranges with near-equal
    // particle counts (greedy sweep).
    let ntasks = ntasks.max(1).min(ncells);
    let target = n.div_ceil(ntasks).max(1);
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(ntasks);
    let mut begin = 0usize;
    let mut acc = 0usize;
    for (cell, &count) in counts.iter().enumerate() {
        acc += count as usize;
        if acc >= target && ranges.len() + 1 < ntasks {
            ranges.push((begin, cell + 1));
            begin = cell + 1;
            acc = 0;
        }
    }
    ranges.push((begin, ncells));

    // Split the scratch arrays at the range boundaries so each task owns a
    // disjoint contiguous output slice.
    struct OutSlices<'a> {
        icell: &'a mut [u32],
        ix: &'a mut [u32],
        iy: &'a mut [u32],
        dx: &'a mut [f64],
        dy: &'a mut [f64],
        vx: &'a mut [f64],
        vy: &'a mut [f64],
    }
    let mut outs: Vec<(usize, usize, OutSlices<'_>)> = Vec::with_capacity(ranges.len());
    {
        let (mut icell, mut ix, mut iy, mut dx, mut dy, mut vx, mut vy) = (
            scratch.icell.as_mut_slice(),
            scratch.ix.as_mut_slice(),
            scratch.iy.as_mut_slice(),
            scratch.dx.as_mut_slice(),
            scratch.dy.as_mut_slice(),
            scratch.vx.as_mut_slice(),
            scratch.vy.as_mut_slice(),
        );
        let mut consumed = 0usize;
        for &(c0, c1) in &ranges {
            let len = starts[c1] as usize - starts[c0] as usize;
            let (a1, b1) = icell.split_at_mut(len);
            icell = b1;
            let (a2, b2) = ix.split_at_mut(len);
            ix = b2;
            let (a3, b3) = iy.split_at_mut(len);
            iy = b3;
            let (a4, b4) = dx.split_at_mut(len);
            dx = b4;
            let (a5, b5) = dy.split_at_mut(len);
            dy = b5;
            let (a6, b6) = vx.split_at_mut(len);
            vx = b6;
            let (a7, b7) = vy.split_at_mut(len);
            vy = b7;
            outs.push((
                c0,
                c1,
                OutSlices {
                    icell: a1,
                    ix: a2,
                    iy: a3,
                    dx: a4,
                    dy: a5,
                    vx: a6,
                    vy: a7,
                },
            ));
            consumed += len;
        }
        debug_assert_eq!(consumed, n);
    }

    let pi = &*p;
    par::for_each(outs, |(c0, c1, out)| {
        let base = starts[c0] as usize;
        // Local cursors relative to this task's slice.
        let mut cursor: Vec<u32> = (starts[c0..c1]).iter().map(|&s| s - base as u32).collect();
        for i in 0..n {
            let c = pi.icell[i] as usize;
            if c >= c0 && c < c1 {
                let k = c - c0;
                let dst = cursor[k] as usize;
                cursor[k] += 1;
                out.icell[dst] = pi.icell[i];
                out.ix[dst] = pi.ix[i];
                out.iy[dst] = pi.iy[i];
                out.dx[dst] = pi.dx[i];
                out.dy[dst] = pi.dy[i];
                out.vx[dst] = pi.vx[i];
                out.vy[dst] = pi.vy[i];
            }
        }
    });
    std::mem::swap(p, scratch);
}

/// Zero-allocation parallel out-of-place counting sort on a persistent
/// pool: the cell-partitioned scheme of [`par_sort_out_of_place`], but with
/// the histogram, prefix sums, per-task cursors, and task descriptors all in
/// caller-owned or stack storage. Produces the exact stable order of the
/// sequential sort. One task per pool worker.
pub fn pool_sort_out_of_place(
    p: &mut ParticlesSoA,
    scratch: &mut ParticlesSoA,
    ncells: usize,
    pool: &ThreadPool,
    arena: &mut SortArena,
) {
    let n = p.len();
    if scratch.len() != n {
        *scratch = ParticlesSoA::zeroed(n);
    }
    let ntasks = pool.nthreads().min(ncells).max(1);
    if ntasks == 1 || n == 0 {
        sort_out_of_place_with(p, scratch, ncells, arena);
        return;
    }
    arena.ensure(ncells);
    cell_counts_into(&p.icell, &mut arena.counts[..ncells]);
    cell_starts_into(&arena.counts[..ncells], &mut arena.starts[..ncells + 1]);
    let starts = &arena.starts;

    // Greedy cell partition into contiguous ranges of near-equal particle
    // count, in a stack array (ntasks ≤ pool width ≤ MAX_THREADS).
    let mut ranges = [(0usize, 0usize); MAX_THREADS];
    let mut nranges = 0usize;
    {
        let target = n.div_ceil(ntasks).max(1);
        let mut begin = 0usize;
        let mut acc = 0usize;
        for (cell, &count) in arena.counts[..ncells].iter().enumerate() {
            acc += count as usize;
            if acc >= target && nranges + 1 < ntasks {
                ranges[nranges] = (begin, cell + 1);
                nranges += 1;
                begin = cell + 1;
                acc = 0;
            }
        }
        ranges[nranges] = (begin, ncells);
        nranges += 1;
    }

    // Write cursors relative to each range's base output slot, stored in the
    // arena so each task can own a disjoint sub-slice.
    for &(c0, c1) in &ranges[..nranges] {
        let base = starts[c0];
        for (cur, &start) in arena.cursor[c0..c1].iter_mut().zip(&starts[c0..c1]) {
            *cur = start - base;
        }
    }

    struct Task<'a> {
        c0: usize,
        c1: usize,
        cursor: &'a mut [u32],
        icell: &'a mut [u32],
        ix: &'a mut [u32],
        iy: &'a mut [u32],
        dx: &'a mut [f64],
        dy: &'a mut [f64],
        vx: &'a mut [f64],
        vy: &'a mut [f64],
    }
    let mut tasks: [Option<Task>; MAX_THREADS] = [const { None }; MAX_THREADS];
    {
        let mut cursor = &mut arena.cursor[..ncells];
        let (mut icell, mut ix, mut iy, mut dx, mut dy, mut vx, mut vy) = (
            scratch.icell.as_mut_slice(),
            scratch.ix.as_mut_slice(),
            scratch.iy.as_mut_slice(),
            scratch.dx.as_mut_slice(),
            scratch.dy.as_mut_slice(),
            scratch.vx.as_mut_slice(),
            scratch.vy.as_mut_slice(),
        );
        for (t, &(c0, c1)) in ranges[..nranges].iter().enumerate() {
            let len = (starts[c1] - starts[c0]) as usize;
            let (cu, cr) = cursor.split_at_mut(c1 - c0);
            cursor = cr;
            let (a1, b1) = icell.split_at_mut(len);
            icell = b1;
            let (a2, b2) = ix.split_at_mut(len);
            ix = b2;
            let (a3, b3) = iy.split_at_mut(len);
            iy = b3;
            let (a4, b4) = dx.split_at_mut(len);
            dx = b4;
            let (a5, b5) = dy.split_at_mut(len);
            dy = b5;
            let (a6, b6) = vx.split_at_mut(len);
            vx = b6;
            let (a7, b7) = vy.split_at_mut(len);
            vy = b7;
            tasks[t] = Some(Task {
                c0,
                c1,
                cursor: cu,
                icell: a1,
                ix: a2,
                iy: a3,
                dx: a4,
                dy: a5,
                vx: a6,
                vy: a7,
            });
        }
    }

    let pi = &*p;
    pool.run_items(&mut tasks[..nranges], |_, slot| {
        let t = slot.as_mut().expect("task slot filled above");
        // Each task scans the whole input and keeps only its cell range
        // (the paper accepts this read amplification for disjoint writes).
        for i in 0..n {
            let c = pi.icell[i] as usize;
            if c >= t.c0 && c < t.c1 {
                let k = c - t.c0;
                let dst = t.cursor[k] as usize;
                t.cursor[k] += 1;
                t.icell[dst] = pi.icell[i];
                t.ix[dst] = pi.ix[i];
                t.iy[dst] = pi.iy[i];
                t.dx[dst] = pi.dx[i];
                t.dy[dst] = pi.dy[i];
                t.vx[dst] = pi.vx[i];
                t.vy[dst] = pi.vy[i];
            }
        }
    });
    std::mem::swap(p, scratch);
}

/// True if particles are sorted by cell index (diagnostic).
pub fn is_sorted_by_cell(p: &ParticlesSoA) -> bool {
    p.icell.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize, ncells: usize, seed: u64) -> ParticlesSoA {
        let mut p = ParticlesSoA::zeroed(n);
        let mut s = seed | 1;
        for i in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let c = (s % ncells as u64) as u32;
            p.icell[i] = c;
            p.ix[i] = c / 8;
            p.iy[i] = c % 8;
            p.dx[i] = (i as f64 * 0.37) % 1.0;
            p.vx[i] = i as f64; // unique payload to check permutation fidelity
        }
        p
    }

    fn payload_multiset(p: &ParticlesSoA) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = (0..p.len())
            .map(|i| (p.icell[i], p.vx[i].to_bits()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn out_of_place_sorts_and_permutes() {
        let mut p = mk(5000, 64, 42);
        let before = payload_multiset(&p);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 64);
        assert!(is_sorted_by_cell(&p));
        assert_eq!(payload_multiset(&p), before);
    }

    #[test]
    fn out_of_place_is_stable() {
        // Counting sort with a forward scan is stable: equal cells keep
        // their relative order (vx payload ascends within each cell).
        let mut p = mk(2000, 16, 7);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 16);
        for w in 0..p.len() - 1 {
            if p.icell[w] == p.icell[w + 1] {
                assert!(p.vx[w] < p.vx[w + 1], "stability broken at {w}");
            }
        }
    }

    #[test]
    fn in_place_sorts_and_permutes() {
        let mut p = mk(5000, 64, 43);
        let before = payload_multiset(&p);
        sort_in_place(&mut p, 64);
        assert!(is_sorted_by_cell(&p));
        assert_eq!(payload_multiset(&p), before);
    }

    #[test]
    fn parallel_sorts_and_permutes() {
        for ntasks in [1usize, 2, 3, 8, 64] {
            let mut p = mk(3000, 64, 44);
            let before = payload_multiset(&p);
            let mut scratch = ParticlesSoA::zeroed(0);
            par_sort_out_of_place(&mut p, &mut scratch, 64, ntasks);
            assert!(is_sorted_by_cell(&p), "ntasks={ntasks}");
            assert_eq!(payload_multiset(&p), before, "ntasks={ntasks}");
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        // Same stable order, not just sorted.
        let mut a = mk(3000, 32, 45);
        let mut b = a.clone();
        let mut s1 = ParticlesSoA::zeroed(0);
        let mut s2 = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut a, &mut s1, 32);
        par_sort_out_of_place(&mut b, &mut s2, 32, 4);
        assert_eq!(a.icell, b.icell);
        assert_eq!(a.vx, b.vx);
    }

    #[test]
    fn already_sorted_is_noop_permutation() {
        let mut p = mk(1000, 16, 46);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 16);
        let snapshot = p.clone();
        sort_in_place(&mut p, 16);
        assert_eq!(p.icell, snapshot.icell);
        assert_eq!(p.vx, snapshot.vx);
    }

    #[test]
    fn empty_and_single() {
        let mut p = ParticlesSoA::zeroed(0);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 16);
        sort_in_place(&mut p, 16);
        assert!(p.is_empty());

        let mut p = mk(1, 16, 47);
        sort_in_place(&mut p, 16);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn all_same_cell() {
        let mut p = mk(100, 64, 48);
        p.icell.fill(5);
        let before = payload_multiset(&p);
        sort_in_place(&mut p, 64);
        assert_eq!(payload_multiset(&p), before);
        let mut scratch = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut p, &mut scratch, 64);
        assert_eq!(payload_multiset(&p), before);
    }

    #[test]
    fn pool_sort_matches_sequential_exactly() {
        for nthreads in [1usize, 2, 3, 4] {
            let pool = ThreadPool::new(nthreads);
            let mut arena = SortArena::new();
            let mut a = mk(3000, 32, 49);
            let mut b = a.clone();
            let mut s1 = ParticlesSoA::zeroed(0);
            let mut s2 = ParticlesSoA::zeroed(0);
            sort_out_of_place(&mut a, &mut s1, 32);
            // Sort twice through the same arena: the second run (already
            // sorted input) must also match, proving the arena re-primes.
            pool_sort_out_of_place(&mut b, &mut s2, 32, &pool, &mut arena);
            pool_sort_out_of_place(&mut b, &mut s2, 32, &pool, &mut arena);
            assert_eq!(a.icell, b.icell, "nthreads={nthreads}");
            assert_eq!(a.vx, b.vx, "nthreads={nthreads}");
        }
    }

    #[test]
    fn in_place_arena_variant_sorts_and_permutes() {
        // The cycle-chasing sort is unstable, so only sortedness and the
        // payload multiset are comparable across variants.
        let mut p = mk(2000, 16, 50);
        let before = payload_multiset(&p);
        let mut arena = SortArena::new();
        sort_in_place_with(&mut p, 16, &mut arena);
        assert!(is_sorted_by_cell(&p));
        assert_eq!(payload_multiset(&p), before);
        // Reuse the arena on a second store.
        let mut q = mk(500, 16, 51);
        let before = payload_multiset(&q);
        sort_in_place_with(&mut q, 16, &mut arena);
        assert!(is_sorted_by_cell(&q));
        assert_eq!(payload_multiset(&q), before);
    }

    #[test]
    fn counts_and_starts() {
        let icell = vec![2u32, 0, 2, 3, 2];
        let counts = cell_counts(&icell, 4);
        assert_eq!(counts, vec![1, 0, 3, 1]);
        let starts = cell_starts(&counts);
        assert_eq!(starts, vec![0, 1, 1, 4, 5]);
    }
}
