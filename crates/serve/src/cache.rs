//! Fingerprint-keyed result cache.
//!
//! Two jobs with identical [`PicConfig`](pic_core::sim::PicConfig)
//! fingerprints and step counts necessarily produce bit-identical
//! trajectories (the whole workspace is deterministic given the config and
//! pool width), so the second submission can be served from the first
//! completed job's trajectory digest without burning executor time.

/// Cache key: the config fingerprint
/// ([`config_fingerprint`](pic_core::resilience::checkpoint::config_fingerprint))
/// plus the requested step count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a fingerprint of the canonical config string.
    pub fingerprint: u64,
    /// Steps the job ran.
    pub steps: u64,
}

#[derive(Debug)]
struct Entry {
    key: CacheKey,
    digest: u64,
    last_used: u64,
}

/// A small LRU map from [`CacheKey`] to trajectory digest.
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    tick: u64,
    entries: Vec<Entry>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// A cache holding at most `cap` completed trajectories (`cap == 0`
    /// disables caching).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            tick: 0,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a digest, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: CacheKey) -> Option<u64> {
        self.tick += 1;
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(e.digest)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a completed trajectory's digest, evicting the
    /// least-recently-used entry at capacity.
    pub fn insert(&mut self, key: CacheKey, digest: u64) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.digest = digest;
            e.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.cap {
            if let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(lru);
            }
        }
        self.entries.push(Entry {
            key,
            digest,
            last_used: self.tick,
        });
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(f: u64, s: u64) -> CacheKey {
        CacheKey {
            fingerprint: f,
            steps: s,
        }
    }

    #[test]
    fn hit_miss_counters_and_key_separation() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get(k(1, 10)), None);
        c.insert(k(1, 10), 0xabc);
        assert_eq!(c.get(k(1, 10)), Some(0xabc));
        // Same config, different step count: distinct trajectory.
        assert_eq!(c.get(k(1, 20)), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_the_stalest() {
        let mut c = ResultCache::new(2);
        c.insert(k(1, 1), 11);
        c.insert(k(2, 1), 22);
        assert_eq!(c.get(k(1, 1)), Some(11)); // refresh 1
        c.insert(k(3, 1), 33); // evicts 2
        assert_eq!(c.get(k(2, 1)), None);
        assert_eq!(c.get(k(1, 1)), Some(11));
        assert_eq!(c.get(k(3, 1)), Some(33));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        c.insert(k(1, 1), 11);
        assert_eq!(c.get(k(1, 1)), None);
        assert!(c.is_empty());
    }
}
