//! Admission-time cost estimation from the calibrated analytic model.
//!
//! Early versions of the scheduler ranked jobs by *declared remaining
//! steps* — honest tenants only, and blind to the fact that a step of a
//! 100k-particle job costs far more than a step of a 1k-particle one. The
//! estimator below prices a quantum the way the paper prices a PIC step:
//! a per-particle term (push + deposit), a per-cell term (field solve and
//! grid reductions), both divided across the shared pool, plus a
//! per-reduced-array communication term from
//! [`minimpi::cost::CostModel::allreduce`] — the same LogGP tree formula
//! the scaling projections use. The compute coefficients start at
//! plausible defaults and are recalibrated online from every committed
//! quantum's wall time ([`CostEstimator::observe`]), so the ranking
//! converges to this machine's actual throughput.

use minimpi::cost::CostModel;

/// Exponential-moving-average weight of one new calibration sample.
const EMA: f64 = 0.3;

/// Online-calibrated cost model for one scheduling quantum.
#[derive(Debug, Clone)]
pub struct CostEstimator {
    /// Seconds of single-thread compute per particle per step.
    per_particle_step: f64,
    /// Seconds of single-thread compute per grid cell per step.
    per_cell_step: f64,
    /// Communication model for the per-step grid reductions.
    comm: CostModel,
    /// Worker-pool width the compute terms are divided by.
    threads: usize,
    /// Committed calibration samples absorbed so far.
    samples: u64,
}

impl CostEstimator {
    /// An estimator for a pool of `threads` workers, seeded with
    /// plausible-order defaults (≈20 ns per particle-step, ≈50 ns per
    /// cell-step) and the Curie-like communication constants. The seeds
    /// only matter until the first [`observe`](Self::observe): ratios
    /// between jobs are already meaningful because every estimate uses
    /// the same coefficients.
    pub fn new(threads: usize) -> Self {
        Self {
            per_particle_step: 2.0e-8,
            per_cell_step: 5.0e-8,
            comm: CostModel::curie_like(),
            threads: threads.max(1),
            samples: 0,
        }
    }

    /// Estimated wall seconds to run `steps` steps of a job with
    /// `particles` markers over `cells` grid cells, reducing
    /// `reduced_arrays` grid arrays per step.
    pub fn estimate(
        &self,
        particles: usize,
        cells: usize,
        reduced_arrays: usize,
        steps: u64,
    ) -> f64 {
        let compute = (particles as f64 * self.per_particle_step
            + cells as f64 * self.per_cell_step)
            / self.threads as f64;
        let comm = reduced_arrays as f64
            * self
                .comm
                .allreduce(self.threads, cells * std::mem::size_of::<f64>());
        steps as f64 * (compute + comm)
    }

    /// Absorb the measured wall time of one committed quantum: subtract
    /// the modelled communication, attribute the rest to compute, and
    /// EMA-update the per-particle coefficient (holding the per-cell /
    /// per-particle ratio fixed — quanta don't vary the two
    /// independently, so a one-dimensional update is all the signal
    /// supports). Faulted quanta must not be observed — their wall time
    /// includes injected stalls, not throughput.
    pub fn observe(
        &mut self,
        particles: usize,
        cells: usize,
        reduced_arrays: usize,
        steps: u64,
        elapsed_secs: f64,
    ) {
        if steps == 0 || particles == 0 || !elapsed_secs.is_finite() || elapsed_secs <= 0.0 {
            return;
        }
        let comm = reduced_arrays as f64
            * self
                .comm
                .allreduce(self.threads, cells * std::mem::size_of::<f64>());
        let compute_per_step = (elapsed_secs / steps as f64 - comm).max(0.0);
        // compute_per_step = (p·a + c·(ratio·a)) / threads, solve for a.
        let ratio = self.per_cell_step / self.per_particle_step;
        let denom = particles as f64 + cells as f64 * ratio;
        let a = compute_per_step * self.threads as f64 / denom;
        if !a.is_finite() || a <= 0.0 {
            return;
        }
        self.per_particle_step = (1.0 - EMA) * self.per_particle_step + EMA * a;
        self.per_cell_step = ratio * self.per_particle_step;
        self.samples += 1;
    }

    /// Calibration samples absorbed so far (0 means the estimator still
    /// runs on its seed coefficients).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current per-particle-step compute coefficient, seconds.
    pub fn per_particle_step(&self) -> f64 {
        self.per_particle_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_jobs_cost_more() {
        let est = CostEstimator::new(4);
        let small = est.estimate(1_000, 256, 1, 10);
        let big = est.estimate(100_000, 256, 1, 10);
        // 100× the particles: not a full 100× (cell + comm terms are
        // shared) but far beyond any per-step constant.
        assert!(big > small * 20.0, "{big} vs {small}");
        // More steps scale linearly.
        assert!((est.estimate(1_000, 256, 1, 20) - 2.0 * small).abs() < 1e-12);
        // An EM step reduces four arrays, never cheaper than one.
        assert!(est.estimate(1_000, 256, 4, 10) > est.estimate(1_000, 256, 1, 10));
    }

    #[test]
    fn observation_converges_to_measured_throughput() {
        let mut est = CostEstimator::new(1);
        // Pretend the machine really runs 1 µs per particle-step (50×
        // slower than the seed): repeated observations must converge.
        let (p, c) = (10_000, 256);
        let true_per_particle = 1.0e-6;
        let ratio = est.per_cell_step / est.per_particle_step;
        let elapsed_per_step = p as f64 * true_per_particle + c as f64 * ratio * true_per_particle;
        for _ in 0..40 {
            est.observe(p, c, 1, 16, 16.0 * elapsed_per_step);
        }
        let rel = (est.per_particle_step() - true_per_particle).abs() / true_per_particle;
        assert!(
            rel < 0.01,
            "per-particle {} rel {rel}",
            est.per_particle_step()
        );
        assert_eq!(est.samples(), 40);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut est = CostEstimator::new(2);
        let before = est.per_particle_step();
        est.observe(0, 256, 1, 16, 1.0);
        est.observe(1_000, 256, 1, 0, 1.0);
        est.observe(1_000, 256, 1, 16, f64::NAN);
        est.observe(1_000, 256, 1, 16, -1.0);
        assert_eq!(est.per_particle_step(), before);
        assert_eq!(est.samples(), 0);
    }
}
