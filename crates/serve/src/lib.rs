//! # serve — multi-tenant simulation job runtime
//!
//! An async-free serving layer that runs many simulations — single-species
//! electrostatic [`Simulation`](pic_core::sim::Simulation)s and
//! multi-species electromagnetic [`EmSimulation`](pic_core::em::EmSimulation)s
//! behind one [`Tenant`] abstraction — over one shared
//! [`ThreadPool`](pic_core::pool::ThreadPool), built on the workspace's
//! resilience primitives: bit-exact versioned checkpoints, config
//! fingerprints, invariant watchdogs, and the job-scoped fault ledger.
//!
//! Robustness is the point — a fleet of tenants must not be taken down by
//! one bad job:
//!
//! * **Checkpoint preemption, bit-exact resume.** Jobs run in
//!   checkpoint-bounded quanta; under [`SchedPolicy::SrtfPreempt`] a long
//!   job yields at the boundary when a shorter one waits, and resumes
//!   later from its snapshot (fingerprint-verified on re-admission) with a
//!   bit-identical trajectory.
//! * **Deadlines and progress timeouts.** Per-job wall-clock deadlines
//!   fail overdue tenants at scheduling points; per-quantum
//!   `slice_timeout`s arm the pool's stall-deadline hook, so a stuck
//!   stripe is detected, ledgered, and contained.
//! * **Retry with seeded exponential backoff.** Faulted jobs roll back to
//!   their last checkpoint and wait `retry_base · 2^(k−1)` (jittered from
//!   a seeded RNG, capped) *off* the executor; a retry budget bounds the
//!   damage.
//! * **Poison quarantine.** N faults within a sliding window turn a job
//!   [`Quarantined`](JobState::Quarantined), with its slice of the fault
//!   ledger attached as evidence — concurrent healthy tenants never
//!   notice.
//! * **Admission control and load shedding.** A bounded active set;
//!   overload evicts the queued job with the oldest deadline, and every
//!   shed is ledgered.
//! * **Result caching.** Identical config fingerprints (same steps) are
//!   served from the completed trajectory's digest without re-running.
//! * **Calibrated cost-based scheduling.** SRTF ranks jobs by estimated
//!   remaining wall seconds from a [`CostEstimator`] — per-particle and
//!   per-cell compute terms plus the LogGP allreduce term of
//!   [`minimpi::cost::CostModel`] — recalibrated online from every
//!   committed quantum, instead of trusting declared step counts.
//!
//! Decomposed (`DecomposedSimulation`) tenants multiplex one minimpi
//! world by carrying distinct tag blocks
//! ([`job_tag_block`](minimpi::job_tag_block), re-exported here) in their
//! `DecompConfig`, so concurrent jobs never alias step tags.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod job;
pub mod runtime;
pub mod tenant;

pub use cache::{CacheKey, ResultCache};
pub use cost::CostEstimator;
pub use job::{FaultInjection, JobId, JobReport, JobSpec, JobState};
pub use minimpi::{job_tag_block, JOB_TAG_SHIFT, MAX_TAG_JOBS};
pub use runtime::{JobRuntime, RunReport, RuntimeConfig, SchedPolicy};
pub use tenant::{Tenant, Workload};
