//! Tenant abstraction: one runtime scheduling loop over both simulation
//! kinds the workspace offers — the single-species electrostatic
//! [`Simulation`] and the multi-species electromagnetic [`EmSimulation`].
//!
//! The runtime never branches on the tenant kind outside this module: a
//! [`Workload`] describes what to run (and fingerprints it for the result
//! cache and checkpoint verification), and a live [`Tenant`] exposes the
//! handful of operations the scheduler needs — step, checkpoint, watchdog
//! scan, diagnostic streaming. Checkpoints carry their own magic, so a
//! snapshot of one kind can never be re-admitted into a tenant of the
//! other ([`ckpt::is_em_snapshot`] routes the decode).

use pic_core::diag::DiagStream;
use pic_core::em::{EmConfig, EmSimulation};
use pic_core::pool::ThreadPool;
use pic_core::resilience::checkpoint::{self as ckpt};
use pic_core::resilience::watchdog::{scan_violation, WatchdogConfig, WatchdogViolation};
use pic_core::sim::{PicConfig, Simulation};
use std::io::Write;
use std::sync::Arc;

/// What a job runs: the configuration of either simulation kind.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A single-species electrostatic simulation ([`Simulation`]).
    Single(PicConfig),
    /// A multi-species 2d3v electromagnetic simulation ([`EmSimulation`]).
    MultiSpecies(EmConfig),
}

impl Workload {
    /// The config fingerprint keying the result cache and verified against
    /// every checkpoint before re-admission. The two kinds hash different
    /// canonical strings, so a `Single` and a `MultiSpecies` workload can
    /// never collide.
    pub fn fingerprint(&self) -> u64 {
        match self {
            Workload::Single(cfg) => ckpt::config_fingerprint(cfg),
            Workload::MultiSpecies(cfg) => ckpt::em_config_fingerprint(cfg),
        }
    }

    /// Total marker particles stepped per time step (all species).
    pub fn particles(&self) -> usize {
        match self {
            Workload::Single(cfg) => cfg.n_particles,
            Workload::MultiSpecies(cfg) => cfg.total_particles(),
        }
    }

    /// Grid cells (= grid points, periodic) touched per time step.
    pub fn cells(&self) -> usize {
        match self {
            Workload::Single(cfg) => cfg.grid_nx * cfg.grid_ny,
            Workload::MultiSpecies(cfg) => cfg.grid_nx * cfg.grid_ny,
        }
    }

    /// Grid arrays reduced each step: ρ alone for the electrostatic kind,
    /// ρ plus the three current components for the electromagnetic one —
    /// the admission cost model charges communication per reduced array.
    pub fn reduced_arrays(&self) -> usize {
        match self {
            Workload::Single(_) => 1,
            Workload::MultiSpecies(_) => 4,
        }
    }
}

/// A live tenant: the simulation kind erased behind the operations the
/// scheduler uses.
// The runtime keeps tenants behind one `Box` already; boxing the larger
// variant would only add a second indirection on the hot stepping path.
#[allow(clippy::large_enum_variant)]
pub enum Tenant {
    /// Electrostatic single-species tenant.
    Single(Simulation),
    /// Electromagnetic multi-species tenant.
    Em(EmSimulation),
}

impl Tenant {
    /// Build a fresh tenant on the shared pool.
    pub fn new_shared(workload: &Workload, pool: Arc<ThreadPool>) -> Result<Self, String> {
        match workload {
            Workload::Single(cfg) => Simulation::new_shared(cfg.clone(), pool)
                .map(Tenant::Single)
                .map_err(|e| format!("init: {e}")),
            Workload::MultiSpecies(cfg) => EmSimulation::new_shared(cfg.clone(), pool)
                .map(Tenant::Em)
                .map_err(|e| format!("init: {e}")),
        }
    }

    /// Restore a tenant from a snapshot after verifying (a) the snapshot
    /// kind matches the workload kind and (b) its config fingerprint
    /// matches `fingerprint` — a checkpoint may only re-enter the executor
    /// under the exact config that produced it.
    pub fn from_snapshot_shared(
        workload: &Workload,
        snapshot: &[u8],
        fingerprint: u64,
        pool: Arc<ThreadPool>,
    ) -> Result<Self, String> {
        match workload {
            Workload::Single(cfg) => {
                if ckpt::is_em_snapshot(snapshot) {
                    return Err("EM checkpoint offered to a single-species job".into());
                }
                let st = ckpt::decode(snapshot).map_err(|e| format!("decode checkpoint: {e}"))?;
                if st.config_fingerprint != fingerprint {
                    return Err("checkpoint fingerprint does not match job config".into());
                }
                Simulation::from_snapshot_shared(cfg.clone(), snapshot, pool)
                    .map(Tenant::Single)
                    .map_err(|e| format!("restore: {e}"))
            }
            Workload::MultiSpecies(cfg) => {
                if !ckpt::is_em_snapshot(snapshot) {
                    return Err("single-species checkpoint offered to an EM job".into());
                }
                let st =
                    ckpt::decode_em(snapshot).map_err(|e| format!("decode checkpoint: {e}"))?;
                if st.config_fingerprint != fingerprint {
                    return Err("checkpoint fingerprint does not match job config".into());
                }
                EmSimulation::from_snapshot_shared(cfg.clone(), snapshot, pool)
                    .map(Tenant::Em)
                    .map_err(|e| format!("restore: {e}"))
            }
        }
    }

    /// Steps completed so far.
    pub fn steps(&self) -> u64 {
        match self {
            Tenant::Single(s) => s.steps() as u64,
            Tenant::Em(s) => s.steps() as u64,
        }
    }

    /// Advance one step.
    pub fn step(&mut self) {
        match self {
            Tenant::Single(s) => s.step(),
            Tenant::Em(s) => s.step(),
        }
    }

    /// Bit-exact versioned checkpoint of the current state.
    pub fn checkpoint(&self) -> Vec<u8> {
        match self {
            Tenant::Single(s) => s.checkpoint(),
            Tenant::Em(s) => s.checkpoint(),
        }
    }

    /// Write one NaN into ρ — the fault-injection hook shared by both
    /// kinds (the watchdog scan must catch it either way).
    pub fn corrupt_rho(&mut self) {
        match self {
            Tenant::Single(s) => s.rho_mut()[0] = f64::NAN,
            Tenant::Em(s) => s.rho_mut()[0] = f64::NAN,
        }
    }

    /// Run the kind's invariant scan against the runtime's thresholds.
    pub fn scan(&mut self, wcfg: &WatchdogConfig) -> Option<WatchdogViolation> {
        match self {
            Tenant::Single(s) => scan_violation(s, wcfg),
            Tenant::Em(s) => s.scan_violation(wcfg),
        }
    }

    /// Drain the adaptive hot-path controller's applied switches since the
    /// last drain (empty unless the workload's config enabled a
    /// [`pic_core::control::ControllerConfig`]). Controller state rides in
    /// the checkpoint, so a preempted-and-resumed tenant keeps draining
    /// from where its last materialization left off.
    pub fn take_hot_path_events(&mut self) -> Vec<pic_core::control::SwitchEvent> {
        match self {
            Tenant::Single(s) => s.take_hot_path_events(),
            Tenant::Em(s) => s.take_hot_path_events(),
        }
    }

    /// Stream the newest per-step diagnostics: the energy sample for both
    /// kinds, plus one per-species moment record for the EM kind.
    pub fn record_stream<W: Write>(&self, stream: &mut DiagStream<W>, job: u64) {
        let step = self.steps();
        match self {
            Tenant::Single(s) => {
                if let Some(sample) = s.diagnostics().history.last() {
                    stream.record(Some(job), step, sample);
                }
            }
            Tenant::Em(s) => {
                if let Some(sample) = s.diagnostics().history.last() {
                    stream.record(Some(job), step, sample);
                }
                for (arena, m) in s.species().iter().zip(s.moments()) {
                    stream.record_species(Some(job), step, &arena.def.name, &m);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_separate_kinds_and_configs() {
        let single = Workload::Single(PicConfig::landau_table1(1_000));
        let em = Workload::MultiSpecies(EmConfig::ion_acoustic(512));
        let em2 = Workload::MultiSpecies(EmConfig::cyclotron(512));
        assert_ne!(single.fingerprint(), em.fingerprint());
        assert_ne!(em.fingerprint(), em2.fingerprint());
        assert_eq!(em.fingerprint(), em.fingerprint());
    }

    #[test]
    fn snapshot_kind_mismatch_is_rejected() {
        let pool = Arc::new(ThreadPool::new(1));
        let em_wl = Workload::MultiSpecies(EmConfig::ion_acoustic(256));
        let mut em = Tenant::new_shared(&em_wl, pool.clone()).unwrap();
        em.step();
        let em_snap = em.checkpoint();

        let single_wl = Workload::Single(PicConfig::landau_table1(1_000));
        match Tenant::from_snapshot_shared(&single_wl, &em_snap, single_wl.fingerprint(), pool) {
            Err(err) => assert!(err.contains("EM checkpoint"), "{err}"),
            Ok(_) => panic!("EM snapshot accepted by a single-species job"),
        }
    }

    #[test]
    fn em_tenant_checkpoint_resume_is_bit_exact() {
        let pool = Arc::new(ThreadPool::new(2));
        let wl = Workload::MultiSpecies(EmConfig::ion_acoustic(512));
        let mut a = Tenant::new_shared(&wl, pool.clone()).unwrap();
        for _ in 0..3 {
            a.step();
        }
        let snap = a.checkpoint();
        let mut b = Tenant::from_snapshot_shared(&wl, &snap, wl.fingerprint(), pool).unwrap();
        for _ in 0..3 {
            a.step();
            b.step();
        }
        assert_eq!(a.checkpoint(), b.checkpoint());
    }
}
