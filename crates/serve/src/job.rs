//! Job identity, specification, lifecycle state machine, and reports.

use crate::tenant::Workload;
use pic_core::em::EmConfig;
use pic_core::faultlog::FaultEvent;
use pic_core::sim::PicConfig;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Identity of one submitted job. Ids are dense (assigned in submission
/// order) and never reused within a runtime, so they double as the FIFO
/// arrival order and as the tenant key in the fault ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle of a job.
///
/// ```text
/// Queued ──▶ Admitted ──▶ Running ──▶ Done
///    │           │        ▲   │  ╲──▶ Failed
///    │           │        │   ▼   ╲─▶ Quarantined
///    │           ╲──▶ Failed  Preempted ──▶ (Running | Failed)
///    ╲──▶ Shed / Failed
/// ```
///
/// `Preempted` covers both voluntary yields at checkpoint boundaries and
/// retry-backoff waits after a fault rollback — in both cases the job is
/// off the executor and resumes bit-exactly from its last checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, not yet picked up by the scheduler.
    Queued,
    /// Past admission control (or served from the result cache).
    Admitted,
    /// Currently stepping on the shared pool.
    Running,
    /// Off the executor with a valid checkpoint; will resume.
    Preempted,
    /// Finished all requested steps (terminal).
    Done,
    /// Deadline blown or retry budget exhausted (terminal).
    Failed,
    /// Isolated after repeated faults within the quarantine window
    /// (terminal); the triggering ledger slice is attached to the report.
    Quarantined,
    /// Evicted by admission control under overload (terminal).
    Shed,
}

impl JobState {
    /// Stable lowercase name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Admitted => "admitted",
            JobState::Running => "running",
            JobState::Preempted => "preempted",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Quarantined => "quarantined",
            JobState::Shed => "shed",
        }
    }

    /// True once the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Quarantined | JobState::Shed
        )
    }

    /// Whether the state machine permits `self → to`.
    pub fn can_transition(self, to: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, to),
            (Queued, Admitted)
                | (Queued, Shed)
                | (Queued, Failed)
                | (Admitted, Running)
                | (Admitted, Done) // served from the result cache
                | (Admitted, Failed)
                | (Running, Preempted)
                | (Running, Done)
                | (Running, Failed)
                | (Running, Quarantined)
                | (Preempted, Running)
                | (Preempted, Failed)
        )
    }
}

/// Deterministic fault injected into a job, for tests and the `bench_jobs`
/// gate. Injections are properties of the *job*, so they re-fire
/// identically under any scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// Healthy job.
    None,
    /// Before step `at_step` (first attempt only), one pool stripe sleeps
    /// `millis` ms — long enough to trip the pool's stall deadline when
    /// the job carries a `slice_timeout`.
    Hang {
        /// Step before which the stripe stalls.
        at_step: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// The live simulation is destroyed before step `at_step` (first
    /// attempt only) — the process-local analogue of a rank kill; the job
    /// must resume from its last checkpoint.
    Kill {
        /// Step before which the simulation dies.
        at_step: u64,
    },
    /// One NaN is written into ρ at the first checkpoint scan at or after
    /// `at_step`, once — the watchdog rolls the job back and the replay
    /// runs clean (a transient soft error).
    CorruptOnce {
        /// Earliest step at which the corruption lands.
        at_step: u64,
    },
    /// Like [`CorruptOnce`](FaultInjection::CorruptOnce) but re-fires on
    /// every replay — a poison job that can never pass its scan and must
    /// be quarantined.
    Poison {
        /// Earliest step at which the corruption lands (every attempt).
        at_step: u64,
    },
}

/// Everything the runtime needs to run one job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable label (reports only; identity is the [`JobId`]).
    pub name: String,
    /// The simulation to run — either kind. Its fingerprint keys the
    /// result cache and verifies checkpoints on re-admission.
    pub workload: Workload,
    /// Steps to run.
    pub steps: u64,
    /// Wall-clock budget from submission to completion; blown deadlines
    /// fail the job at the next scheduling point.
    pub deadline: Option<Duration>,
    /// Step-progress timeout: one scheduling quantum must finish within
    /// this long. Enforced both via the pool's stall-deadline hook (a
    /// stuck stripe is ledgered as `worker_stall`) and by wall clock.
    pub slice_timeout: Option<Duration>,
    /// Rollback/retry attempts before the job is failed.
    pub max_retries: u32,
    /// Deterministic injected fault, if any.
    pub inject: FaultInjection,
    /// When set, per-step diagnostics stream to this file as JSON lines,
    /// committed at checkpoint cadence (never torn, never replayed).
    pub stream_path: Option<PathBuf>,
    /// Deterministic arrival offset: the job is submitted now (admission
    /// control applies immediately) but becomes schedulable only this
    /// long after submission — how tests and benches model a short job
    /// arriving while a long one runs, without wall-clock racing.
    pub start_after: Option<Duration>,
}

impl JobSpec {
    /// A single-species electrostatic spec with defaults: no deadline, no
    /// slice timeout, 3 retries, no injection, no streaming.
    pub fn new(name: impl Into<String>, cfg: PicConfig, steps: u64) -> Self {
        Self::with_workload(name, Workload::Single(cfg), steps)
    }

    /// A multi-species electromagnetic spec with the same defaults.
    pub fn new_em(name: impl Into<String>, cfg: EmConfig, steps: u64) -> Self {
        Self::with_workload(name, Workload::MultiSpecies(cfg), steps)
    }

    /// A spec around an already-wrapped [`Workload`].
    pub fn with_workload(name: impl Into<String>, workload: Workload, steps: u64) -> Self {
        Self {
            name: name.into(),
            workload,
            steps,
            deadline: None,
            slice_timeout: None,
            max_retries: 3,
            inject: FaultInjection::None,
            stream_path: None,
            start_after: None,
        }
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the per-quantum progress timeout.
    pub fn with_slice_timeout(mut self, d: Duration) -> Self {
        self.slice_timeout = Some(d);
        self
    }

    /// Set the retry budget.
    pub fn with_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Set the injected fault.
    pub fn with_injection(mut self, inj: FaultInjection) -> Self {
        self.inject = inj;
        self
    }

    /// Stream per-step diagnostics to `path`.
    pub fn with_stream(mut self, path: impl Into<PathBuf>) -> Self {
        self.stream_path = Some(path.into());
        self
    }

    /// Delay schedulability by `d` after submission (modelled arrival).
    pub fn with_start_after(mut self, d: Duration) -> Self {
        self.start_after = Some(d);
        self
    }
}

/// Final accounting for one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job.
    pub id: JobId,
    /// Its label.
    pub name: String,
    /// Terminal (or last observed) state.
    pub state: JobState,
    /// Steps completed and checkpointed.
    pub steps_done: u64,
    /// Rollback/retry attempts consumed.
    pub retries: u32,
    /// Voluntary checkpoint-boundary yields.
    pub preemptions: u64,
    /// Times the job was rebuilt from its checkpoint (preemptions,
    /// retries, and kill recoveries all restore).
    pub restores: u64,
    /// Served from the fingerprint-keyed result cache without running.
    pub cache_hit: bool,
    /// Submission → terminal-state latency.
    pub latency: Option<Duration>,
    /// Trajectory digest (hash of the final checkpoint) when `Done`.
    pub digest: Option<u64>,
    /// For quarantined jobs: the job's slice of the fault ledger at the
    /// moment of the verdict — the evidence.
    pub evidence: Vec<FaultEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states_have_no_exits() {
        use JobState::*;
        let all = [
            Queued,
            Admitted,
            Running,
            Preempted,
            Done,
            Failed,
            Quarantined,
            Shed,
        ];
        for s in all {
            if s.is_terminal() {
                for t in all {
                    assert!(!s.can_transition(t), "{} -> {}", s.name(), t.name());
                }
            }
        }
    }

    #[test]
    fn lifecycle_paths_are_permitted() {
        use JobState::*;
        // The happy path, the preemption loop, and each containment exit.
        for path in [
            vec![Queued, Admitted, Running, Done],
            vec![Queued, Admitted, Running, Preempted, Running, Done],
            vec![Queued, Admitted, Running, Preempted, Failed],
            vec![Queued, Admitted, Running, Quarantined],
            vec![Queued, Shed],
            vec![Queued, Failed],
            vec![Queued, Admitted, Done],
        ] {
            for w in path.windows(2) {
                assert!(
                    w[0].can_transition(w[1]),
                    "{} -> {}",
                    w[0].name(),
                    w[1].name()
                );
            }
        }
        // And the obviously-illegal jumps.
        assert!(!Queued.can_transition(Running));
        assert!(!Preempted.can_transition(Done));
        assert!(!Preempted.can_transition(Shed));
        assert!(!Running.can_transition(Shed));
    }
}
