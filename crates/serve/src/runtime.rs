//! The scheduler: admission, slicing, preemption, retry, quarantine.

use crate::cache::{CacheKey, ResultCache};
use crate::cost::CostEstimator;
use crate::job::{FaultInjection, JobId, JobReport, JobSpec, JobState};
use crate::tenant::Tenant;
use pic_core::diag::DiagStream;
use pic_core::faultlog::{FaultEvent, FaultKind, FaultLog};
use pic_core::pool::ThreadPool;
use pic_core::resilience::checkpoint::{self as ckpt};
use pic_core::resilience::watchdog::WatchdogConfig;
use pic_core::rng::Rng;
use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Which scheduling discipline [`JobRuntime::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Shortest-remaining-*time*-first with preemption at checkpoint
    /// boundaries: jobs are ranked by estimated remaining wall seconds
    /// from the online-calibrated [`CostEstimator`] (particles, cells,
    /// reduced arrays — not declared step counts), a running job yields
    /// when a cheaper runnable job is waiting, and faulted jobs back off
    /// *off* the executor — other tenants run during the wait. The
    /// default.
    SrtfPreempt,
    /// Naive baseline: strict submission order, each job runs to a
    /// terminal state before the next starts, and the head's backoff
    /// sleeps block the whole queue.
    Fifo,
}

/// Runtime-wide knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Width of the shared worker pool. All tenants step over the same
    /// pool, and trajectories depend only on this width — so results are
    /// reproducible no matter how jobs interleave.
    pub threads: usize,
    /// Scheduling quantum in simulation steps: a job checkpoints (and may
    /// be preempted) every this many steps.
    pub quantum_steps: u64,
    /// Admission bound: at most this many non-terminal jobs. Submissions
    /// beyond it shed the queued job with the oldest deadline.
    pub max_active: usize,
    /// First retry backoff; attempt `k` waits `retry_base · 2^(k−1)`
    /// (seeded-jittered, capped at [`max_backoff`](Self::max_backoff)).
    pub retry_base: Duration,
    /// Upper bound on one backoff wait.
    pub max_backoff: Duration,
    /// Seed of the backoff jitter — reruns reproduce wait sequences.
    pub backoff_seed: u64,
    /// Faults within [`quarantine_window`](Self::quarantine_window) that
    /// turn a job `Quarantined` instead of retrying.
    pub quarantine_faults: usize,
    /// Sliding window for the quarantine fault count.
    pub quarantine_window: Duration,
    /// Capacity of the fingerprint-keyed result cache (0 disables).
    pub cache_capacity: usize,
    /// Invariant thresholds for the per-slice watchdog scan.
    pub watchdog: WatchdogConfig,
    /// Scheduling discipline.
    pub policy: SchedPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            threads: 2,
            quantum_steps: 16,
            max_active: 16,
            retry_base: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            backoff_seed: 0x5eed_cafe,
            quarantine_faults: 3,
            quarantine_window: Duration::from_secs(10),
            cache_capacity: 16,
            watchdog: WatchdogConfig::default(),
            policy: SchedPolicy::SrtfPreempt,
        }
    }
}

/// Aggregate outcome of one [`JobRuntime::run`] drain.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-job accounting, in submission order.
    pub jobs: Vec<JobReport>,
    /// Wall time from the `run` call to queue drain.
    pub makespan: Duration,
    /// Result-cache hits across all submissions.
    pub cache_hits: u64,
    /// Result-cache misses across all submissions.
    pub cache_misses: u64,
    /// Jobs evicted by admission control.
    pub shed_jobs: u64,
    /// Jobs isolated by the quarantine policy.
    pub quarantined_jobs: u64,
}

impl RunReport {
    /// Latency of the `q`-quantile job (0.0–1.0) among jobs that reached a
    /// terminal state, by submission-to-terminal wall time.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        let mut lat: Vec<Duration> = self.jobs.iter().filter_map(|j| j.latency).collect();
        if lat.is_empty() {
            return None;
        }
        lat.sort_unstable();
        let idx = ((lat.len() as f64 * q).ceil() as usize).clamp(1, lat.len()) - 1;
        Some(lat[idx])
    }
}

/// What ended a slice early (or failed its checkpoint scan).
enum SliceFault {
    /// The live simulation died mid-slice (injected kill).
    Killed,
    /// The slice exceeded the job's progress timeout.
    Hang(String),
    /// The watchdog scan at the checkpoint boundary failed.
    Violation(String),
}

/// One tenant's runtime bookkeeping around its [`JobSpec`].
struct Job {
    id: JobId,
    spec: JobSpec,
    state: JobState,
    fingerprint: u64,
    /// Live simulation while `Running`; dropped on preemption, fault, or
    /// completion (resume always goes through the checkpoint).
    sim: Option<Box<Tenant>>,
    /// Last clean checkpoint — the rollback and resume target.
    snapshot: Option<Vec<u8>>,
    stream: Option<DiagStream<BufWriter<File>>>,
    submitted: Instant,
    finished: Option<Instant>,
    /// Retry-backoff gate: not schedulable before this instant.
    not_before: Option<Instant>,
    steps_done: u64,
    retries: u32,
    preemptions: u64,
    restores: u64,
    fault_times: Vec<Instant>,
    cache_hit: bool,
    digest: Option<u64>,
    evidence: Vec<FaultEvent>,
    hang_armed: bool,
    kill_armed: bool,
    corrupt_armed: bool,
}

impl Job {
    fn new(id: JobId, spec: JobSpec, fingerprint: u64, now: Instant) -> Self {
        Self {
            id,
            fingerprint,
            state: JobState::Queued,
            sim: None,
            snapshot: None,
            stream: None,
            submitted: now,
            finished: None,
            not_before: None,
            steps_done: 0,
            retries: 0,
            preemptions: 0,
            restores: 0,
            fault_times: Vec::new(),
            cache_hit: false,
            digest: None,
            evidence: Vec::new(),
            hang_armed: matches!(spec.inject, FaultInjection::Hang { .. }),
            kill_armed: matches!(spec.inject, FaultInjection::Kill { .. }),
            corrupt_armed: matches!(spec.inject, FaultInjection::CorruptOnce { .. }),
            spec,
        }
    }

    fn remaining(&self) -> u64 {
        self.spec.steps.saturating_sub(self.steps_done)
    }

    fn deadline_at(&self) -> Option<Instant> {
        self.spec.deadline.map(|d| self.submitted + d)
    }

    fn set_state(&mut self, to: JobState) {
        assert!(
            self.state.can_transition(to),
            "{}: illegal transition {} -> {}",
            self.id,
            self.state.name(),
            to.name()
        );
        self.state = to;
    }

    fn report(&self) -> JobReport {
        JobReport {
            id: self.id,
            name: self.spec.name.clone(),
            state: self.state,
            steps_done: self.steps_done,
            retries: self.retries,
            preemptions: self.preemptions,
            restores: self.restores,
            cache_hit: self.cache_hit,
            latency: self.finished.map(|f| f - self.submitted),
            digest: self.digest,
            evidence: self.evidence.clone(),
        }
    }
}

/// An async-free multi-tenant job runtime: many simulations over one
/// shared [`ThreadPool`], scheduled in checkpoint-bounded quanta.
///
/// Submit jobs with [`submit`](Self::submit) (admission control and the
/// result cache apply there), then drain the queue with
/// [`run`](Self::run). Every lifecycle event — checkpoints, preemptions,
/// restores, retries, quarantines, sheds — lands in the job-scoped
/// [`FaultLog`] ledger.
pub struct JobRuntime {
    rcfg: RuntimeConfig,
    pool: Arc<ThreadPool>,
    jobs: Vec<Job>,
    log: FaultLog,
    cache: ResultCache,
    rng: Rng,
    estimator: CostEstimator,
}

impl JobRuntime {
    /// Build a runtime with its shared pool.
    pub fn new(rcfg: RuntimeConfig) -> Self {
        let pool = Arc::new(ThreadPool::new(rcfg.threads));
        let cache = ResultCache::new(rcfg.cache_capacity);
        let rng = Rng::seed_from_u64(rcfg.backoff_seed);
        let estimator = CostEstimator::new(rcfg.threads);
        Self {
            rcfg,
            pool,
            jobs: Vec::new(),
            log: FaultLog::new(),
            cache,
            rng,
            estimator,
        }
    }

    /// The admission cost model, calibrated so far from committed quanta.
    pub fn estimator(&self) -> &CostEstimator {
        &self.estimator
    }

    /// Estimated wall seconds the job still needs (its workload priced by
    /// the calibrated model over its remaining steps). `None` for unknown
    /// ids.
    pub fn estimated_remaining(&self, id: JobId) -> Option<f64> {
        self.jobs.get(id.0 as usize).map(|j| self.remaining_cost(j))
    }

    /// Price a job's remaining work with the calibrated cost model.
    fn remaining_cost(&self, job: &Job) -> f64 {
        let wl = &job.spec.workload;
        self.estimator.estimate(
            wl.particles(),
            wl.cells(),
            wl.reduced_arrays(),
            job.remaining(),
        )
    }

    /// The shared worker pool (width decides every tenant's trajectory).
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// The merged, job-scoped fault ledger.
    pub fn ledger(&self) -> &FaultLog {
        &self.log
    }

    /// Result-cache `(hits, misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Current report for one job.
    pub fn job_report(&self, id: JobId) -> Option<JobReport> {
        self.jobs.get(id.0 as usize).map(|j| j.report())
    }

    /// Submit a job. Returns its id immediately; the job is either
    /// `Queued`, served straight from the result cache (`Done`), or
    /// `Shed` by admission control. Which queued job sheds is
    /// oldest-deadline-first: under overload the tenant whose deadline is
    /// nearest (and thus least likely to be met) is evicted, deadline-less
    /// jobs last, the newcomer as the final tie-breaker.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let now = Instant::now();
        let id = JobId(self.jobs.len() as u64);
        let fingerprint = spec.workload.fingerprint();
        let key = CacheKey {
            fingerprint,
            steps: spec.steps,
        };
        let mut job = Job::new(id, spec, fingerprint, now);
        // Modelled arrival: admission happens now, scheduling waits.
        job.not_before = job.spec.start_after.map(|d| now + d);

        if let Some(digest) = self.cache.get(key) {
            job.set_state(JobState::Admitted);
            job.set_state(JobState::Done);
            job.cache_hit = true;
            job.digest = Some(digest);
            job.steps_done = job.spec.steps;
            job.finished = Some(now);
            self.log.record_for_job(
                id.0,
                job.spec.steps,
                0,
                0,
                FaultKind::Restore,
                format!("served from result cache, digest {digest:#x}"),
            );
            self.jobs.push(job);
            return id;
        }

        let active = self.jobs.iter().filter(|j| !j.state.is_terminal()).count();
        if active >= self.rcfg.max_active {
            // Pick the shed victim among still-queued jobs and the
            // newcomer: earliest deadline first, `None` deadlines survive.
            let mut victim: Option<usize> = None; // None = the newcomer
            let mut victim_dl = job.deadline_at();
            for (i, j) in self.jobs.iter().enumerate() {
                if j.state != JobState::Queued {
                    continue;
                }
                let dl = j.deadline_at();
                let earlier = match (dl, victim_dl) {
                    (Some(a), Some(b)) => a < b,
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if earlier {
                    victim = Some(i);
                    victim_dl = dl;
                }
            }
            match victim {
                Some(v) => {
                    let vid = self.jobs[v].id;
                    self.jobs[v].set_state(JobState::Shed);
                    self.jobs[v].finished = Some(now);
                    let steps = self.jobs[v].steps_done;
                    self.log.record_for_job(
                        vid.0,
                        steps,
                        0,
                        0,
                        FaultKind::Shed,
                        format!("evicted (oldest deadline) to admit {id}"),
                    );
                }
                None => {
                    job.set_state(JobState::Shed);
                    job.finished = Some(now);
                    self.log.record_for_job(
                        id.0,
                        0,
                        0,
                        0,
                        FaultKind::Shed,
                        format!("queue full ({active} active), no earlier deadline to evict"),
                    );
                }
            }
        }

        self.jobs.push(job);
        id
    }

    /// Drain the queue: schedule quanta until every job is terminal.
    pub fn run(&mut self) -> RunReport {
        let start = Instant::now();
        loop {
            let now = Instant::now();
            self.sweep_deadlines(now);
            match self.pick(now) {
                Pick::Slice(j) => self.run_slice(j),
                Pick::Wait(until) => {
                    let dur = (until - now).min(Duration::from_millis(50));
                    thread::sleep(dur.max(Duration::from_micros(200)));
                }
                Pick::Drained => break,
            }
        }
        let quarantined = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Quarantined)
            .count() as u64;
        let shed = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Shed)
            .count() as u64;
        RunReport {
            jobs: self.jobs.iter().map(|j| j.report()).collect(),
            makespan: start.elapsed(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            shed_jobs: shed,
            quarantined_jobs: quarantined,
        }
    }

    /// Fail every non-terminal job whose wall-clock deadline has passed.
    fn sweep_deadlines(&mut self, now: Instant) {
        for j in 0..self.jobs.len() {
            let job = &self.jobs[j];
            if job.state.is_terminal() {
                continue;
            }
            let Some(dl) = job.deadline_at() else {
                continue;
            };
            if now < dl {
                continue;
            }
            let job = &mut self.jobs[j];
            job.sim = None;
            if let Some(s) = job.stream.as_mut() {
                s.discard();
            }
            if job.state == JobState::Running {
                // A deadline can only fire here between quanta (the
                // runtime is single-threaded), so Running means a slice
                // just ended; route through Preempted for the machine.
                job.set_state(JobState::Preempted);
            }
            job.set_state(JobState::Failed);
            job.finished = Some(now);
            let (id, steps, d) = (job.id.0, job.steps_done, job.spec.deadline.unwrap());
            self.log.record_for_job(
                id,
                steps,
                0,
                0,
                FaultKind::Timeout,
                format!("wall-clock deadline {d:?} exceeded"),
            );
        }
    }

    fn pick(&self, now: Instant) -> Pick {
        let ready = |j: &Job| j.not_before.is_none_or(|t| t <= now);
        match self.rcfg.policy {
            SchedPolicy::Fifo => {
                // Strict arrival order; the head blocks the line even
                // while backing off.
                match self.jobs.iter().position(|j| !j.state.is_terminal()) {
                    Some(h) if ready(&self.jobs[h]) => Pick::Slice(h),
                    Some(h) => Pick::Wait(self.jobs[h].not_before.unwrap()),
                    None => Pick::Drained,
                }
            }
            SchedPolicy::SrtfPreempt => {
                let mut best: Option<usize> = None;
                let mut wake: Option<Instant> = None;
                for (i, j) in self.jobs.iter().enumerate() {
                    if j.state.is_terminal() {
                        continue;
                    }
                    if !ready(j) {
                        let t = j.not_before.unwrap();
                        wake = Some(wake.map_or(t, |w: Instant| w.min(t)));
                        continue;
                    }
                    best = Some(match best {
                        Some(b)
                            if self
                                .remaining_cost(&self.jobs[b])
                                .total_cmp(&self.remaining_cost(j))
                                .is_le() =>
                        {
                            b
                        }
                        _ => i,
                    });
                }
                match (best, wake) {
                    (Some(b), _) => Pick::Slice(b),
                    (None, Some(w)) => Pick::Wait(w),
                    (None, None) => Pick::Drained,
                }
            }
        }
    }

    /// Is a runnable job with strictly cheaper estimated remaining time
    /// waiting?
    fn shorter_job_waiting(&self, j: usize, now: Instant) -> bool {
        let rem = self.remaining_cost(&self.jobs[j]);
        self.jobs.iter().enumerate().any(|(i, o)| {
            i != j
                && !o.state.is_terminal()
                && o.not_before.is_none_or(|t| t <= now)
                && self.remaining_cost(o) < rem
        })
    }

    /// Run one quantum of job `j`, then checkpoint (and possibly yield) or
    /// contain the fault.
    fn run_slice(&mut self, j: usize) {
        if self.jobs[j].state == JobState::Queued {
            self.jobs[j].set_state(JobState::Admitted);
        }
        self.jobs[j].not_before = None;

        if let Err(e) = self.materialize(j) {
            let job = &mut self.jobs[j];
            if job.state == JobState::Admitted || job.state == JobState::Preempted {
                job.set_state(JobState::Failed);
            }
            job.finished = Some(Instant::now());
            let (id, steps) = (job.id.0, job.steps_done);
            self.log.record_for_job(
                id,
                steps,
                0,
                0,
                FaultKind::Timeout,
                format!("unable to materialize: {e}"),
            );
            return;
        }
        if self.jobs[j].state != JobState::Running {
            self.jobs[j].set_state(JobState::Running);
        }

        let quantum_end =
            (self.jobs[j].steps_done + self.rcfg.quantum_steps).min(self.jobs[j].spec.steps);
        if let Some(t) = self.jobs[j].spec.slice_timeout {
            self.pool.set_stall_deadline(Some(t));
        }
        let t0 = Instant::now();
        let mut killed = false;
        let mut adapt_events = Vec::new();
        {
            let pool = &self.pool;
            let job = &mut self.jobs[j];
            let id = job.id;
            let inject = job.spec.inject;
            let sim = job.sim.as_mut().expect("materialized");
            while sim.steps() < quantum_end {
                let next = sim.steps() + 1;
                match inject {
                    FaultInjection::Hang { at_step, millis }
                        if job.hang_armed && next == at_step =>
                    {
                        job.hang_armed = false;
                        let n = pool.nthreads();
                        pool.run(n, |i| {
                            if i + 1 == n {
                                thread::sleep(Duration::from_millis(millis));
                            }
                        });
                    }
                    FaultInjection::Kill { at_step } if job.kill_armed && next == at_step => {
                        job.kill_armed = false;
                        killed = true;
                        break;
                    }
                    _ => {}
                }
                sim.step();
                if let Some(stream) = job.stream.as_mut() {
                    sim.record_stream(stream, id.0);
                }
                // Hot-path controller decisions stream next to the physics
                // samples and are ledgered after the slice (the ledger
                // lives outside this borrow).
                for ev in sim.take_hot_path_events() {
                    if let Some(stream) = job.stream.as_mut() {
                        stream.record_adapt(Some(id.0), &ev);
                    }
                    adapt_events.push(ev);
                }
            }
            if !killed {
                // Corruption injections land at the checkpoint scan — the
                // detection point — so replays are deterministic.
                let reached = sim.steps();
                match inject {
                    FaultInjection::CorruptOnce { at_step }
                        if job.corrupt_armed && reached >= at_step =>
                    {
                        job.corrupt_armed = false;
                        sim.corrupt_rho();
                    }
                    FaultInjection::Poison { at_step } if reached >= at_step => {
                        sim.corrupt_rho();
                    }
                    _ => {}
                }
            }
        }
        self.pool.set_stall_deadline(None);
        let stalls = self.pool.take_stall_events();
        let elapsed = t0.elapsed();

        let id = self.jobs[j].id;
        for ev in &adapt_events {
            self.log.record_for_job(
                id.0,
                ev.step,
                0,
                0,
                FaultKind::Adapt,
                format!(
                    "{} {} -> {} (disorder {:.3}, uniform {:.3}, period {})",
                    ev.what, ev.from, ev.to, ev.disorder, ev.uniform, ev.period
                ),
            );
        }
        for s in &stalls {
            self.log.record_for_job(
                id.0,
                self.jobs[j].steps_done,
                0,
                0,
                FaultKind::WorkerStall,
                format!(
                    "stripe stalled {:?} past deadline ({} jobs outstanding)",
                    s.waited, s.remaining
                ),
            );
        }

        let mut fault: Option<SliceFault> = None;
        if killed {
            self.jobs[j].sim = None;
            fault = Some(SliceFault::Killed);
        } else if !stalls.is_empty() || self.jobs[j].spec.slice_timeout.is_some_and(|t| elapsed > t)
        {
            fault = Some(SliceFault::Hang(format!(
                "quantum took {elapsed:?} (timeout {:?}, {} stalls)",
                self.jobs[j].spec.slice_timeout,
                stalls.len()
            )));
        } else {
            let sim = self.jobs[j].sim.as_mut().expect("live");
            if let Some(v) = sim.scan(&self.rcfg.watchdog) {
                fault = Some(SliceFault::Violation(v.detail));
            }
        }

        if fault.is_none() {
            // Calibrate the admission model from this committed quantum's
            // wall time (faulted quanta measure containment, not
            // throughput, and are skipped).
            let stepped = self.jobs[j]
                .sim
                .as_ref()
                .expect("live")
                .steps()
                .saturating_sub(self.jobs[j].steps_done);
            let wl = &self.jobs[j].spec.workload;
            self.estimator.observe(
                wl.particles(),
                wl.cells(),
                wl.reduced_arrays(),
                stepped,
                elapsed.as_secs_f64(),
            );
        }

        match fault {
            None => self.commit_slice(j),
            Some(f) => self.contain_fault(j, f),
        }
    }

    /// Build the job's live simulation: from its checkpoint when it has
    /// one (fingerprint-verified re-admission), fresh otherwise.
    fn materialize(&mut self, j: usize) -> Result<(), String> {
        if self.jobs[j].sim.is_some() {
            return Ok(());
        }
        let id = self.jobs[j].id;
        if self.jobs[j].stream.is_none() {
            if let Some(path) = self.jobs[j].spec.stream_path.clone() {
                let file = File::create(&path)
                    .map_err(|e| format!("open stream {}: {e}", path.display()))?;
                self.jobs[j].stream = Some(DiagStream::new(BufWriter::new(file)));
            }
        }
        match self.jobs[j].snapshot.take() {
            Some(snap) => {
                // Verify the snapshot still belongs to this tenant's
                // config (kind and fingerprint) before re-admitting it to
                // the executor.
                let sim = Tenant::from_snapshot_shared(
                    &self.jobs[j].spec.workload,
                    &snap,
                    self.jobs[j].fingerprint,
                    self.pool.clone(),
                )?;
                let job = &mut self.jobs[j];
                job.sim = Some(Box::new(sim));
                job.snapshot = Some(snap);
                job.restores += 1;
                let steps = job.steps_done;
                self.log.record_for_job(
                    id.0,
                    steps,
                    0,
                    0,
                    FaultKind::Restore,
                    format!("resumed from checkpoint at step {steps} (fingerprint ok)"),
                );
                Ok(())
            }
            None => {
                let sim = Tenant::new_shared(&self.jobs[j].spec.workload, self.pool.clone())?;
                let job = &mut self.jobs[j];
                let snap = sim.checkpoint();
                job.sim = Some(Box::new(sim));
                job.snapshot = Some(snap);
                self.log.record_for_job(
                    id.0,
                    0,
                    0,
                    0,
                    FaultKind::Checkpoint,
                    "initial checkpoint at step 0".into(),
                );
                Ok(())
            }
        }
    }

    /// Clean quantum: checkpoint, flush the stream, finish or maybe yield.
    fn commit_slice(&mut self, j: usize) {
        let now = Instant::now();
        let job = &mut self.jobs[j];
        let id = job.id;
        let sim = job.sim.as_mut().expect("live");
        job.steps_done = sim.steps();
        let snap = sim.checkpoint();
        job.snapshot = Some(snap);
        if let Some(s) = job.stream.as_mut() {
            // Commit failures are containment-worthy, but a broken local
            // sink should not kill the tenant: ledger and stream on.
            if s.commit().is_err() {
                let steps = job.steps_done;
                self.log.record_for_job(
                    id.0,
                    steps,
                    0,
                    0,
                    FaultKind::Timeout,
                    "diagnostic stream commit failed; continuing".into(),
                );
            }
        }
        let steps = self.jobs[j].steps_done;
        self.log.record_for_job(
            id.0,
            steps,
            0,
            0,
            FaultKind::Checkpoint,
            format!("checkpoint at step {steps}"),
        );

        if steps == self.jobs[j].spec.steps {
            let job = &mut self.jobs[j];
            job.digest = job.snapshot.as_deref().map(ckpt::snapshot_hash);
            job.sim = None;
            job.set_state(JobState::Done);
            job.finished = Some(now);
            self.cache.insert(
                CacheKey {
                    fingerprint: job.fingerprint,
                    steps: job.spec.steps,
                },
                job.digest.unwrap_or(0),
            );
            return;
        }

        if self.rcfg.policy == SchedPolicy::SrtfPreempt && self.shorter_job_waiting(j, now) {
            let job = &mut self.jobs[j];
            job.sim = None; // resume must re-verify and restore the checkpoint
            job.preemptions += 1;
            job.set_state(JobState::Preempted);
            let steps = job.steps_done;
            self.log.record_for_job(
                id.0,
                steps,
                0,
                0,
                FaultKind::Preempt,
                format!("yielded at checkpoint boundary (step {steps})"),
            );
        }
    }

    /// Faulted quantum: roll back, then quarantine, fail, or back off.
    fn contain_fault(&mut self, j: usize, fault: SliceFault) {
        let now = Instant::now();
        let id = self.jobs[j].id;
        let steps = self.jobs[j].steps_done;
        self.jobs[j].sim = None;
        if let Some(s) = self.jobs[j].stream.as_mut() {
            s.discard();
        }

        let (kind, detail) = match fault {
            SliceFault::Killed => (
                FaultKind::Kill,
                "live simulation destroyed mid-quantum".to_string(),
            ),
            SliceFault::Hang(d) => (FaultKind::Timeout, d),
            SliceFault::Violation(d) => (FaultKind::Rollback, format!("rolled back: {d}")),
        };
        self.log.record_for_job(id.0, steps, 0, 0, kind, detail);

        let window = self.rcfg.quarantine_window;
        let job = &mut self.jobs[j];
        job.fault_times.push(now);
        job.fault_times.retain(|t| now.duration_since(*t) <= window);

        if job.fault_times.len() >= self.rcfg.quarantine_faults {
            job.set_state(JobState::Quarantined);
            job.finished = Some(now);
            let n = job.fault_times.len();
            self.log.record_for_job(
                id.0,
                steps,
                0,
                0,
                FaultKind::Quarantine,
                format!("{n} faults within {window:?} — isolating"),
            );
            // Attach the evidence: this job's full ledger slice,
            // quarantine verdict included.
            self.jobs[j].evidence = self.log.events_for_job(id.0);
            return;
        }

        if job.retries >= job.spec.max_retries {
            job.set_state(JobState::Failed);
            job.finished = Some(now);
            let budget = job.spec.max_retries;
            self.log.record_for_job(
                id.0,
                steps,
                0,
                0,
                FaultKind::Timeout,
                format!("retry budget ({budget}) exhausted"),
            );
            return;
        }

        job.retries += 1;
        let attempt = job.retries;
        let exp = self
            .rcfg
            .retry_base
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let jitter = 0.75 + 0.5 * self.rng.uniform();
        let delay = Duration::from_secs_f64(exp.as_secs_f64() * jitter).min(self.rcfg.max_backoff);
        job.not_before = Some(now + delay);
        job.set_state(JobState::Preempted);
        self.log.record_for_job(
            id.0,
            steps,
            0,
            0,
            FaultKind::Retry,
            format!("attempt {attempt} resumes from step {steps} after {delay:?}"),
        );
    }
}

enum Pick {
    Slice(usize),
    Wait(Instant),
    Drained,
}
