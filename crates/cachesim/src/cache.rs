//! A single set-associative cache level with true-LRU replacement.

use crate::AccessKind;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set). `1` = direct-mapped.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Tagged next-line stream prefetcher (the DCU/streamer prefetchers of
    /// real Intel parts): a demand miss, or a first hit on a prefetched
    /// line, pulls in the next sequential line. Sequential streams then
    /// stop counting as misses after startup, which matches what hardware
    /// performance counters report for the PIC particle arrays.
    pub prefetch: bool,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Validate the geometry.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line_bytes must be a power of two, got {}",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("ways must be nonzero".into());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.ways * self.line_bytes) {
            return Err(format!(
                "size {} not divisible by ways*line ({}*{})",
                self.size_bytes, self.ways, self.line_bytes
            ));
        }
        Ok(())
    }
}

/// Result of a single line probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line present.
    Hit,
    /// Line absent; it has been allocated. Carries the evicted line address
    /// if a dirty line was written back.
    Miss {
        /// Address of a dirty evicted line (`None` if the victim was clean or
        /// the set had a free way).
        writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Line was installed by the prefetcher and not yet demanded.
    prefetched: bool,
    /// LRU timestamp: larger = more recently used.
    stamp: u64,
}

const EMPTY_WAY: Way = Way {
    tag: 0,
    valid: false,
    dirty: false,
    prefetched: false,
    stamp: 0,
};

/// One cache level.
///
/// The stored tag is the full line address; the set index is
/// `line_addr mod nsets` (a mask when `nsets` is a power of two, a modulo
/// otherwise — non-power-of-two set counts occur on real parts, e.g. the
/// 20-way Haswell L3 whose 20480 sets come from the CBo slice count).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Way>, // sets * ways, row-major by set
    nsets: usize,
    /// `Some(mask)` when `nsets` is a power of two.
    set_mask: Option<u64>,
    line_shift: u32,
    clock: u64,
}

impl Cache {
    /// Build a cache from a validated geometry.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache geometry");
        let nsets = cfg.sets();
        let set_mask = nsets.is_power_of_two().then(|| nsets as u64 - 1);
        Self {
            cfg,
            sets: vec![EMPTY_WAY; nsets * cfg.ways],
            nsets,
            set_mask,
            line_shift: cfg.line_bytes.trailing_zeros(),
            clock: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        match self.set_mask {
            Some(m) => (line_addr & m) as usize,
            None => (line_addr % self.nsets as u64) as usize,
        }
    }

    /// Probe one *line address* (byte address already shifted right by the
    /// line size). Returns hit/miss and allocates on miss. When the tagged
    /// prefetcher is enabled, a miss — or the first demand hit on a
    /// prefetched line — also installs `line_addr + 1`.
    pub fn probe_line(&mut self, line_addr: u64, kind: AccessKind) -> Probe {
        self.clock += 1;
        let set = self.set_of(line_addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.sets[base..base + self.cfg.ways];

        // Hit?
        let mut hit = false;
        let mut trigger = false;
        for w in ways.iter_mut() {
            if w.valid && w.tag == line_addr {
                w.stamp = self.clock;
                if kind == AccessKind::Write {
                    w.dirty = true;
                }
                trigger = w.prefetched;
                w.prefetched = false;
                hit = true;
                break;
            }
        }
        if hit {
            if trigger && self.cfg.prefetch {
                self.install_prefetch(line_addr + 1);
            }
            return Probe::Hit;
        }
        let ways = {
            let base = set * self.cfg.ways;
            &mut self.sets[base..base + self.cfg.ways]
        };

        // Miss: pick a free way, else the LRU one.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.stamp } else { 0 })
            .map(|(i, _)| i)
            .unwrap();
        let w = &mut ways[victim];
        let writeback = (w.valid && w.dirty).then_some(w.tag);
        *w = Way {
            tag: line_addr,
            valid: true,
            dirty: kind == AccessKind::Write,
            prefetched: false,
            stamp: self.clock,
        };
        if self.cfg.prefetch {
            self.install_prefetch(line_addr + 1);
        }
        Probe::Miss { writeback }
    }

    /// Quietly install a line with the prefetched tag (no stats, no
    /// writeback accounting — prefetch traffic is not a demand miss).
    fn install_prefetch(&mut self, line_addr: u64) {
        let set = self.set_of(line_addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.sets[base..base + self.cfg.ways];
        if ways.iter().any(|w| w.valid && w.tag == line_addr) {
            return;
        }
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.stamp } else { 0 })
            .map(|(i, _)| i)
            .unwrap();
        ways[victim] = Way {
            tag: line_addr,
            valid: true,
            dirty: false,
            prefetched: true,
            stamp: self.clock,
        };
    }

    /// Check whether a line is resident without touching LRU state.
    pub fn contains_line(&self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        let base = set * self.cfg.ways;
        self.sets[base..base + self.cfg.ways]
            .iter()
            .any(|w| w.valid && w.tag == line_addr)
    }

    /// Convert a byte address to a line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Invalidate everything (cold restart).
    pub fn flush(&mut self) {
        self.sets.fill(EMPTY_WAY);
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            prefetch: false,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(63), 0);
        assert_eq!(c.line_of(64), 1);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(matches!(
            c.probe_line(5, AccessKind::Read),
            Probe::Miss { .. }
        ));
        assert_eq!(c.probe_line(5, AccessKind::Read), Probe::Hit);
        assert!(c.contains_line(5));
        assert!(!c.contains_line(6));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Two ways: 8 evicts 0.
        c.probe_line(0, AccessKind::Read);
        c.probe_line(4, AccessKind::Read);
        c.probe_line(8, AccessKind::Read);
        assert!(!c.contains_line(0), "LRU victim should be line 0");
        assert!(c.contains_line(4));
        assert!(c.contains_line(8));
    }

    #[test]
    fn touching_renews_lru() {
        let mut c = tiny();
        c.probe_line(0, AccessKind::Read);
        c.probe_line(4, AccessKind::Read);
        c.probe_line(0, AccessKind::Read); // renew 0 → victim becomes 4
        c.probe_line(8, AccessKind::Read);
        assert!(c.contains_line(0));
        assert!(!c.contains_line(4));
    }

    #[test]
    fn writeback_only_for_dirty_victims() {
        let mut c = tiny();
        c.probe_line(0, AccessKind::Write); // dirty
        c.probe_line(4, AccessKind::Read); // clean
                                           // Evict line 0 (LRU, dirty) → writeback of line 0.
        match c.probe_line(8, AccessKind::Read) {
            Probe::Miss { writeback: Some(a) } => assert_eq!(a, 0),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        // Evict line 4 (clean) → no writeback.
        match c.probe_line(12, AccessKind::Read) {
            Probe::Miss { writeback: None } => {}
            other => panic!("expected clean eviction, got {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.probe_line(0, AccessKind::Read);
        c.probe_line(0, AccessKind::Write); // hit, now dirty
        c.probe_line(4, AccessKind::Read);
        match c.probe_line(8, AccessKind::Read) {
            Probe::Miss { writeback: Some(0) } => {}
            other => panic!("expected writeback of line 0, got {other:?}"),
        }
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 4 sets × 1 way: alternating 0, 4 always conflict.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 1,
            line_bytes: 64,
            prefetch: false,
        });
        for _ in 0..10 {
            assert!(matches!(
                c.probe_line(0, AccessKind::Read),
                Probe::Miss { .. }
            ));
            assert!(matches!(
                c.probe_line(4, AccessKind::Read),
                Probe::Miss { .. }
            ));
        }
    }

    #[test]
    fn fully_fits_working_set() {
        // Working set of 8 lines in a 512-B (8-line) cache: misses only cold.
        let mut c = tiny();
        let mut misses = 0;
        for round in 0..5 {
            for line in 0..8u64 {
                if matches!(c.probe_line(line, AccessKind::Read), Probe::Miss { .. }) {
                    misses += 1;
                    assert_eq!(round, 0, "only cold misses expected");
                }
            }
        }
        assert_eq!(misses, 8);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.probe_line(3, AccessKind::Read);
        assert!(c.contains_line(3));
        c.flush();
        assert!(!c.contains_line(3));
        assert!(matches!(
            c.probe_line(3, AccessKind::Read),
            Probe::Miss { .. }
        ));
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(CacheConfig {
            size_bytes: 500,
            ways: 2,
            line_bytes: 64,
            prefetch: false
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 512,
            ways: 0,
            line_bytes: 64,
            prefetch: false
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 48,
            prefetch: false
        }
        .validate()
        .is_err());
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;

    fn streaming(prefetch: bool) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 64,
            prefetch,
        })
    }

    #[test]
    fn stream_misses_vanish_with_prefetch() {
        let mut with = streaming(true);
        let mut without = streaming(false);
        let mut m_with = 0;
        let mut m_without = 0;
        for line in 0..1000u64 {
            if matches!(with.probe_line(line, AccessKind::Read), Probe::Miss { .. }) {
                m_with += 1;
            }
            if matches!(
                without.probe_line(line, AccessKind::Read),
                Probe::Miss { .. }
            ) {
                m_without += 1;
            }
        }
        assert_eq!(m_without, 1000);
        assert!(
            m_with <= 2,
            "tagged prefetch should hide the stream, got {m_with}"
        );
    }

    #[test]
    fn random_accesses_unaffected_by_prefetch_hits() {
        // A pointer chase with stride > 1 never touches the prefetched
        // next line, so the demand-miss count matches the no-prefetch run.
        let mut with = streaming(true);
        let mut without = streaming(false);
        let mut seq_with = Vec::new();
        let mut seq_without = Vec::new();
        let mut s = 12345u64;
        for _ in 0..2000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let line = (s % 100_000) * 3 + 1; // never adjacent
            seq_with.push(matches!(
                with.probe_line(line, AccessKind::Read),
                Probe::Miss { .. }
            ));
            seq_without.push(matches!(
                without.probe_line(line, AccessKind::Read),
                Probe::Miss { .. }
            ));
        }
        // Prefetched garbage can evict useful lines, so allow a small delta.
        let m_with = seq_with.iter().filter(|&&m| m).count();
        let m_without = seq_without.iter().filter(|&&m| m).count();
        assert!(m_with >= m_without, "{m_with} vs {m_without}");
        assert!(m_with - m_without < 100);
    }

    #[test]
    fn prefetch_install_is_idempotent() {
        let mut c = streaming(true);
        c.probe_line(10, AccessKind::Read); // miss, prefetches 11
        assert!(c.contains_line(11));
        c.probe_line(11, AccessKind::Read); // hit on prefetched, prefetches 12
        assert!(c.contains_line(12));
        // Second hit on 11 no longer triggers (tag consumed).
        let before12 = c.contains_line(13);
        c.probe_line(11, AccessKind::Read);
        assert_eq!(c.contains_line(13), before12);
    }
}
