//! A multi-level cache hierarchy with per-level hit/miss statistics.

use crate::cache::{Cache, CacheConfig, Probe};
use crate::{AccessKind, MemSink};

/// Geometry of the whole hierarchy, L1 first.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Per-level geometries, ordered from the level closest to the core.
    pub levels: Vec<CacheConfig>,
}

impl HierarchyConfig {
    /// The paper's single-core test machine (Intel Xeon E5-2650 v3, Haswell):
    /// 32 KiB 8-way L1d, 256 KiB 8-way L2, 25 MiB 20-way shared L3,
    /// 64-byte lines throughout.
    pub fn haswell() -> Self {
        Self {
            levels: vec![
                CacheConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    prefetch: true,
                },
                CacheConfig {
                    size_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    prefetch: true,
                },
                CacheConfig {
                    size_bytes: 25 * 1024 * 1024,
                    ways: 20,
                    line_bytes: 64,
                    prefetch: true,
                },
            ],
        }
    }

    /// The Curie nodes (Xeon E5-2680, Sandy Bridge): 32 KiB/8 L1d,
    /// 256 KiB/8 L2, 20 MiB/20 L3.
    pub fn sandy_bridge() -> Self {
        let mut cfg = Self::haswell();
        cfg.levels[2].size_bytes = 20 * 1024 * 1024;
        cfg
    }

    /// A miniature hierarchy for fast tests: 1 KiB/2, 4 KiB/4, 16 KiB/8.
    pub fn tiny() -> Self {
        Self {
            levels: vec![
                CacheConfig {
                    size_bytes: 1024,
                    ways: 2,
                    line_bytes: 64,
                    prefetch: false,
                },
                CacheConfig {
                    size_bytes: 4096,
                    ways: 4,
                    line_bytes: 64,
                    prefetch: false,
                },
                CacheConfig {
                    size_bytes: 16 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    prefetch: false,
                },
            ],
        }
    }
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that had to allocate.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl LevelStats {
    /// Total accesses seen by this level.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Misses (convenience accessor mirroring the paper's tables).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (`0.0` when the level saw no traffic).
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// Statistics for the whole hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    levels: Vec<LevelStats>,
    /// Line fetches that missed every level (DRAM accesses).
    pub memory_fetches: u64,
}

impl HierarchyStats {
    /// Stats for level `i` (0 = L1).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn level(&self, i: usize) -> LevelStats {
        self.levels[i]
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Difference `self − earlier`, for per-iteration deltas.
    pub fn delta(&self, earlier: &HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            levels: self
                .levels
                .iter()
                .zip(&earlier.levels)
                .map(|(a, b)| LevelStats {
                    hits: a.hits - b.hits,
                    misses: a.misses - b.misses,
                    writebacks: a.writebacks - b.writebacks,
                })
                .collect(),
            memory_fetches: self.memory_fetches - earlier.memory_fetches,
        }
    }
}

/// An inclusive multi-level cache hierarchy.
///
/// An access probes L1; on a miss it allocates there and probes L2, and so
/// on. Accesses spanning a line boundary are split into one probe per line
/// (as real hardware does).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    caches: Vec<Cache>,
    stats: HierarchyStats,
    line_bytes: u64,
}

impl Hierarchy {
    /// Build a hierarchy. All levels must share one line size.
    ///
    /// # Panics
    /// Panics on an invalid geometry or mismatched line sizes.
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert!(!cfg.levels.is_empty(), "hierarchy needs at least one level");
        let line = cfg.levels[0].line_bytes;
        assert!(
            cfg.levels.iter().all(|l| l.line_bytes == line),
            "all levels must share a line size"
        );
        let caches: Vec<Cache> = cfg.levels.iter().map(|&c| Cache::new(c)).collect();
        let stats = HierarchyStats {
            levels: vec![LevelStats::default(); caches.len()],
            memory_fetches: 0,
        };
        Self {
            caches,
            stats,
            line_bytes: line as u64,
        }
    }

    /// Current counters (cumulative since construction or [`reset_stats`](Self::reset_stats)).
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Zero the counters, keeping cache contents (warm state).
    pub fn reset_stats(&mut self) {
        for l in &mut self.stats.levels {
            *l = LevelStats::default();
        }
        self.stats.memory_fetches = 0;
    }

    /// Invalidate all lines and zero the counters (cold state).
    pub fn flush(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
        self.reset_stats();
    }

    /// Probe one byte-address access of `bytes` bytes.
    pub fn access(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        let first = addr / self.line_bytes;
        let last = (addr + bytes.max(1) as u64 - 1) / self.line_bytes;
        for line in first..=last {
            self.access_line(line, kind);
        }
    }

    fn access_line(&mut self, line: u64, kind: AccessKind) {
        for (i, c) in self.caches.iter_mut().enumerate() {
            match c.probe_line(line, kind) {
                Probe::Hit => {
                    self.stats.levels[i].hits += 1;
                    return;
                }
                Probe::Miss { writeback } => {
                    self.stats.levels[i].misses += 1;
                    if writeback.is_some() {
                        self.stats.levels[i].writebacks += 1;
                    }
                    // fall through to the next level
                }
            }
        }
        self.stats.memory_fetches += 1;
    }
}

impl MemSink for Hierarchy {
    #[inline]
    fn read(&mut self, addr: u64, bytes: u32) {
        self.access(addr, bytes, AccessKind::Read);
    }

    #[inline]
    fn write(&mut self, addr: u64, bytes: u32) {
        self.access(addr, bytes, AccessKind::Write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_misses_once_per_line() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        for addr in (0..64 * 64u64).step_by(8) {
            h.read(addr, 8);
        }
        let s = h.stats();
        // 64 lines touched, 8 accesses per line: 64 L1 misses, 7*64 hits.
        assert_eq!(s.level(0).misses, 64);
        assert_eq!(s.level(0).hits, 7 * 64);
        // L2 and L3 see only the 64 L1 misses, all cold.
        assert_eq!(s.level(1).accesses(), 64);
        assert_eq!(s.level(1).misses, 64);
        assert_eq!(s.level(2).misses, 64);
        assert_eq!(s.memory_fetches, 64);
    }

    #[test]
    fn working_set_fits_l2_not_l1() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny()); // L1 = 1 KiB = 16 lines
        let lines = 32u64; // 2 KiB: fits L2 (4 KiB), not L1
                           // Two passes: the second pass hits L2 but misses L1.
        for pass in 0..2 {
            for l in 0..lines {
                h.read(l * 64, 8);
            }
            if pass == 0 {
                assert_eq!(h.stats().level(0).misses, lines);
                assert_eq!(h.stats().level(1).misses, lines);
            }
        }
        let s = h.stats();
        assert_eq!(s.level(0).misses, 2 * lines, "L1 thrashes");
        assert_eq!(s.level(1).misses, lines, "L2 holds the set");
        assert_eq!(s.level(1).hits, lines);
        assert_eq!(s.memory_fetches, lines);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        h.read(60, 8); // bytes 60..68: lines 0 and 1
        assert_eq!(h.stats().level(0).accesses(), 2);
        assert_eq!(h.stats().level(0).misses, 2);
    }

    #[test]
    fn reset_keeps_warm_state() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        h.read(0, 8);
        h.reset_stats();
        h.read(0, 8); // still resident
        assert_eq!(h.stats().level(0).hits, 1);
        assert_eq!(h.stats().level(0).misses, 0);
    }

    #[test]
    fn flush_goes_cold() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        h.read(0, 8);
        h.flush();
        h.read(0, 8);
        assert_eq!(h.stats().level(0).misses, 1);
    }

    #[test]
    fn delta_snapshots() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        h.read(0, 8);
        let snap = h.stats().clone();
        h.read(64, 8);
        h.read(64, 8);
        let d = h.stats().delta(&snap);
        assert_eq!(d.level(0).misses, 1);
        assert_eq!(d.level(0).hits, 1);
    }

    #[test]
    fn haswell_geometry() {
        let cfg = HierarchyConfig::haswell();
        assert_eq!(cfg.levels[0].sets(), 64);
        assert_eq!(cfg.levels[1].sets(), 512);
        // 25 MiB / (20 × 64) = 20480 sets — not a power of two, which the
        // modulo-indexed Cache supports (real L3s hash across CBo slices).
        assert_eq!(cfg.levels[2].sets(), 20480);
    }

    #[test]
    fn haswell_builds() {
        let h = Hierarchy::new(HierarchyConfig::haswell());
        assert_eq!(h.stats().num_levels(), 3);
    }

    #[test]
    fn write_traffic_counted() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        h.write(0, 8);
        h.write(0, 8);
        assert_eq!(h.stats().level(0).misses, 1);
        assert_eq!(h.stats().level(0).hits, 1);
    }
}
