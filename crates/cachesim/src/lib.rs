//! # cachesim — a trace-driven set-associative cache-hierarchy simulator
//!
//! The paper measures its data-layout effects with hardware performance
//! counters (perf / PAPI) on a Haswell Xeon. Hardware counters are neither
//! portable nor deterministic, so this crate substitutes a deterministic
//! model: a classic multi-level, set-associative, LRU, write-allocate /
//! write-back cache simulator fed with the *exact* address streams of the PIC
//! kernels (`pic-core`'s instrumented mirror kernels emit them through the
//! [`MemSink`] trait).
//!
//! The default geometry, [`HierarchyConfig::haswell`], matches the paper's
//! test machine (Xeon E5-2650 v3): 32 KiB 8-way L1d, 256 KiB 8-way L2,
//! 25 MiB 20-way L3, 64-byte lines.
//!
//! Cache-miss counts per layout ordering are a pure function of
//! (address stream × cache geometry), which is precisely what the paper's
//! Figs. 5–6 and Table II compare — so the simulator reproduces their *shape*
//! machine-independently.
//!
//! ## Example
//!
//! ```
//! use cachesim::{Hierarchy, HierarchyConfig, MemSink};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::haswell());
//! // Stream through 1 MiB: the tagged stream prefetcher (enabled in the
//! // Haswell preset, as on the real part) hides almost every miss.
//! for addr in (0..1 << 20).step_by(8) {
//!     h.read(addr, 8);
//! }
//! let lines = (1u64 << 20) / 64;
//! assert!(h.stats().level(0).misses() < lines / 100);
//!
//! // The same stream with prefetching disabled misses once per line.
//! let mut cfg = HierarchyConfig::haswell();
//! for l in &mut cfg.levels {
//!     l.prefetch = false;
//! }
//! let mut h = Hierarchy::new(cfg);
//! for addr in (0..1 << 20).step_by(8) {
//!     h.read(addr, 8);
//! }
//! assert_eq!(h.stats().level(0).misses(), lines);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
pub mod replay;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats, LevelStats};

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (write-allocate: misses fetch the line first).
    Write,
}

/// A sink for memory-access traces.
///
/// `pic-core`'s instrumented kernels are generic over `MemSink`, so the same
/// kernel code drives either the real arrays (with [`NullSink`], which
/// compiles to nothing) or the cache simulator (with [`Hierarchy`]).
pub trait MemSink {
    /// Record a load of `bytes` bytes at byte address `addr`.
    fn read(&mut self, addr: u64, bytes: u32);
    /// Record a store of `bytes` bytes at byte address `addr`.
    fn write(&mut self, addr: u64, bytes: u32);
}

/// A no-op sink. All calls compile away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MemSink for NullSink {
    #[inline(always)]
    fn read(&mut self, _addr: u64, _bytes: u32) {}
    #[inline(always)]
    fn write(&mut self, _addr: u64, _bytes: u32) {}
}

/// A sink that only counts bytes moved — used by the bandwidth accounting of
/// the Fig. 8 harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByteCounter {
    /// Total bytes loaded.
    pub read_bytes: u64,
    /// Total bytes stored.
    pub write_bytes: u64,
}

impl MemSink for ByteCounter {
    #[inline]
    fn read(&mut self, _addr: u64, bytes: u32) {
        self.read_bytes += bytes as u64;
    }
    #[inline]
    fn write(&mut self, _addr: u64, bytes: u32) {
        self.write_bytes += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_counter_accumulates() {
        let mut c = ByteCounter::default();
        c.read(0, 8);
        c.read(64, 4);
        c.write(128, 32);
        assert_eq!(c.read_bytes, 12);
        assert_eq!(c.write_bytes, 32);
    }

    #[test]
    fn null_sink_is_noop() {
        let mut s = NullSink;
        s.read(0, 8);
        s.write(0, 8);
    }
}
