//! A minimal, dependency-free benchmark harness with a Criterion-shaped API.
//!
//! The benches under `benches/` were written against the Criterion API
//! surface (groups, `bench_function`, `iter`/`iter_with_setup`,
//! throughput annotations). Criterion itself is an external dependency this
//! environment cannot fetch, so this module reimplements the small slice of
//! that API the benches use, on plain `std::time`:
//!
//! * warm-up phase to estimate the cost of one iteration;
//! * a fixed number of samples, each a timed batch of iterations sized so
//!   the whole measurement fits the configured measurement time;
//! * median / min / max report per benchmark, plus derived throughput when
//!   a [`Throughput`] annotation is set.
//!
//! It is intentionally simpler than Criterion — no outlier rejection, no
//! regression against saved baselines — but the numbers answer the same
//! question the paper's tables do: how many nanoseconds per element.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting benchmark
/// bodies. Thin wrapper over [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group: derived rates are printed
/// next to the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes moved per iteration.
    Bytes(u64),
}

/// A benchmark identifier, `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for groups whose name already says it all).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Samples per benchmark (each sample is a timed batch of iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent estimating the per-iteration cost before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing throughput and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = Some(n.max(2));
    }

    fn run(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        let cfg = BenchConfig {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
        };
        let samples = collect_samples(cfg, f);
        report(&self.name, id, &samples, self.throughput);
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), f);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.id.clone(), |b| f(b, input));
    }

    /// Close the group (separator line in the output).
    pub fn finish(self) {}
}

#[derive(Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher<'a> {
    cfg: BenchConfig,
    /// Seconds per iteration, one entry per sample; empty until `iter*`.
    samples: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Benchmark `routine`, timing batches of calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-12)) as u64).max(1);

        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Benchmark `routine` on a fresh value from `setup` each call; only the
    /// routine is timed.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        // Warm-up on a single timed call.
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        let per_iter = t.elapsed().as_secs_f64();
        let per_sample = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1000);

        for _ in 0..self.cfg.sample_size {
            let mut elapsed = 0.0;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                elapsed += t.elapsed().as_secs_f64();
            }
            self.samples.push(elapsed / iters as f64);
        }
    }
}

fn collect_samples(cfg: BenchConfig, mut f: impl FnMut(&mut Bencher)) -> Vec<f64> {
    let mut samples = Vec::with_capacity(cfg.sample_size);
    let mut b = Bencher {
        cfg,
        samples: &mut samples,
    };
    f(&mut b);
    samples
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn fmt_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 1e9 {
        format!("{:.3} G{unit}/s", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.3} M{unit}/s", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.3} K{unit}/s", per_second / 1e3)
    } else {
        format!("{per_second:.1} {unit}/s")
    }
}

fn report(group: &str, id: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id:<32} no samples collected");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    crate::report::record(crate::report::BenchRecord {
        group: group.to_string(),
        id: id.to_string(),
        median_secs: median,
        min_secs: min,
        max_secs: max,
        elements: match throughput {
            Some(Throughput::Elements(n)) => Some(n),
            _ => None,
        },
    });
    let name = format!("{group}/{id}");
    let mut line = format!(
        "{name:<44} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            line += &format!("  thrpt: {}", fmt_rate(n as f64 / median, "elem"));
        }
        Some(Throughput::Bytes(n)) => {
            line += &format!("  thrpt: {}", fmt_rate(n as f64 / median, "B"));
        }
        None => {}
    }
    println!("{line}");
}

/// Declare a benchmark group function, Criterion-style. Both the
/// `name/config/targets` form and the positional form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::harness::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, Criterion-style. Ignores CLI
/// arguments (cargo passes `--bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn iter_collects_requested_samples() {
        let cfg = BenchConfig {
            sample_size: 4,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(4),
        };
        let samples = collect_samples(cfg, |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn iter_with_setup_excludes_setup_cost() {
        let cfg = BenchConfig {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(3),
        };
        // Setup sleeps; routine is ~free. Samples must reflect the routine.
        let samples = collect_samples(cfg, |b| {
            b.iter_with_setup(
                || std::thread::sleep(Duration::from_millis(2)),
                |()| black_box(0),
            )
        });
        assert_eq!(samples.len(), 3);
        assert!(
            samples.iter().all(|&s| s < 1e-3),
            "setup leaked into timing: {samples:?}"
        );
    }

    #[test]
    fn group_api_end_to_end() {
        let mut c = fast();
        let mut g = c.benchmark_group("harness_selftest");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &k| {
            b.iter(|| (0..k).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
