//! Standard experiment configurations — scaled versions of the paper's
//! Table I test case, plus the per-experiment variants.
//!
//! The paper runs 50 M particles for 100 iterations on one Haswell core;
//! the harness defaults are ~50× smaller so every experiment finishes in
//! seconds, and every binary accepts `--particles/--iters/--grid` to scale
//! back up to paper size.

use pic_core::sim::{
    DepositPath, FieldLayout, KernelPath, LoopStructure, ParticleLayout, PicConfig, PositionUpdate,
    Simulation,
};
use pic_core::PicError;
use sfc::Ordering;

/// Default particle count for harness runs.
pub const DEFAULT_PARTICLES: usize = 1_000_000;
/// Default iteration count (the paper's 100).
pub const DEFAULT_ITERS: usize = 100;
/// Default grid edge (the paper's 128).
pub const DEFAULT_GRID: usize = 128;

/// The Table I configuration at the given scale, fully optimized, with a
/// chosen ordering.
pub fn table1(particles: usize, grid: usize, ordering: Ordering) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(particles);
    cfg.grid_nx = grid;
    cfg.grid_ny = grid;
    cfg.ordering = ordering;
    cfg
}

/// The rungs of the Table IV optimization ladder, in paper order, plus an
/// eighth rung for the lane-blocked kernel path (an optimization on top of
/// the paper's ladder; the paper gets its vectorization from icc's
/// auto-vectorizer, this codebase makes the lane blocking explicit) and a
/// ninth for the vectorized deposition (`DepositPath::LaneReduce` — the
/// reassociated per-lane private-ρ deposit, the fastest path in
/// `BENCH_kernels.json`; rungs 1–8 keep the exact scalar-order deposit).
/// Each entry is `(label, config)`; configs share grid/particles/seed so
/// timings are comparable.
pub fn table4_ladder(particles: usize, grid: usize) -> Vec<(&'static str, PicConfig)> {
    let base = |f: &dyn Fn(&mut PicConfig)| {
        let mut cfg = PicConfig::baseline(particles);
        cfg.grid_nx = grid;
        cfg.grid_ny = grid;
        f(&mut cfg);
        cfg
    };
    vec![
        ("Baseline", base(&|_| {})),
        (
            "+ Loop Hoisting",
            base(&|c| {
                // Pre-scale the stored field by qΔt²/(mΔx) and the velocities
                // by Δt/Δx so the fused loop carries no per-particle constant
                // multiplies (§IV-D, paper gain: 5.8%).
                c.hoisted = true;
                c.loop_structure = LoopStructure::Fused;
            }),
        ),
        (
            "+ Loop Splitting",
            base(&|c| {
                c.hoisted = true;
                c.loop_structure = LoopStructure::Split;
            }),
        ),
        (
            "+ Redundant arrays (E and rho)",
            base(&|c| {
                c.loop_structure = LoopStructure::Split;
                c.field_layout = FieldLayout::Redundant;
                c.hoisted = true;
            }),
        ),
        (
            "+ Structure of Arrays (particles)",
            base(&|c| {
                c.loop_structure = LoopStructure::Split;
                c.field_layout = FieldLayout::Redundant;
                c.hoisted = true;
                c.particle_layout = ParticleLayout::Soa;
            }),
        ),
        (
            "+ Space-filling curves (E and rho)",
            base(&|c| {
                c.loop_structure = LoopStructure::Split;
                c.field_layout = FieldLayout::Redundant;
                c.hoisted = true;
                c.particle_layout = ParticleLayout::Soa;
                c.ordering = Ordering::Morton;
            }),
        ),
        (
            "+ Optimized update-positions loop",
            base(&|c| {
                c.loop_structure = LoopStructure::Split;
                c.field_layout = FieldLayout::Redundant;
                c.hoisted = true;
                c.particle_layout = ParticleLayout::Soa;
                c.ordering = Ordering::Morton;
                c.position_update = PositionUpdate::Branchless;
            }),
        ),
        (
            "+ Lane-blocked kernels",
            base(&|c| {
                c.loop_structure = LoopStructure::Split;
                c.field_layout = FieldLayout::Redundant;
                c.hoisted = true;
                c.particle_layout = ParticleLayout::Soa;
                c.ordering = Ordering::Morton;
                c.position_update = PositionUpdate::Branchless;
                c.kernel_path = KernelPath::Lanes;
            }),
        ),
        (
            "+ Vectorized deposition",
            base(&|c| {
                c.loop_structure = LoopStructure::Split;
                c.field_layout = FieldLayout::Redundant;
                c.hoisted = true;
                c.particle_layout = ParticleLayout::Soa;
                c.ordering = Ordering::Morton;
                c.position_update = PositionUpdate::Branchless;
                c.kernel_path = KernelPath::Lanes;
                c.deposit_path = DepositPath::LaneReduce;
            }),
        ),
    ]
}

/// The four variants of Table VII: (label, particle layout, loop structure).
pub fn table7_variants() -> [(&'static str, ParticleLayout, LoopStructure); 4] {
    [
        ("AoS, 1 loop", ParticleLayout::Aos, LoopStructure::Fused),
        ("AoS, 3 loops", ParticleLayout::Aos, LoopStructure::Split),
        ("SoA, 1 loop", ParticleLayout::Soa, LoopStructure::Fused),
        ("SoA, 3 loops", ParticleLayout::Soa, LoopStructure::Split),
    ]
}

/// Run a fresh simulation for `iters` steps and return it (timers warm).
/// Configuration errors (e.g. a non-power-of-two `--grid`) propagate so the
/// binaries can exit with a diagnostic instead of a backtrace.
pub fn run_fresh(cfg: PicConfig, iters: usize) -> Result<Simulation, PicError> {
    let mut sim = Simulation::new(cfg)?;
    sim.reset_timers();
    sim.run(iters);
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_configs_are_valid_and_ordered() {
        let ladder = table4_ladder(500, 32);
        assert_eq!(ladder.len(), 9);
        assert_eq!(ladder[0].0, "Baseline");
        for (label, cfg) in &ladder {
            Simulation::new(cfg.clone()).unwrap_or_else(|e| panic!("{label}: {e}"));
        }
        // Last rung is the fully optimized configuration.
        let last = &ladder[8].1;
        assert_eq!(last.particle_layout, ParticleLayout::Soa);
        assert_eq!(last.field_layout, FieldLayout::Redundant);
        assert_eq!(last.position_update, PositionUpdate::Branchless);
        assert_eq!(last.kernel_path, KernelPath::Lanes);
        assert_eq!(last.deposit_path, DepositPath::LaneReduce);
        assert!(matches!(last.ordering, Ordering::Morton));
        // All rungs below the lane rung run the scalar path, and every rung
        // below the top keeps the exact scalar-order deposit.
        assert!(ladder[..7]
            .iter()
            .all(|(_, c)| c.kernel_path == KernelPath::Scalar));
        assert!(ladder[..8]
            .iter()
            .all(|(_, c)| c.deposit_path == DepositPath::Exact));
    }

    #[test]
    fn ladder_rungs_agree_on_physics() {
        // Every rung must compute the same ρ (same seed & steps).
        let ladder = table4_ladder(800, 32);
        let mut reference: Option<Vec<f64>> = None;
        for (label, cfg) in ladder {
            let sim = run_fresh(cfg, 3).unwrap();
            let rho = sim.rho().to_vec();
            match &reference {
                None => reference = Some(rho),
                Some(r) => {
                    for i in 0..r.len() {
                        assert!(
                            (r[i] - rho[i]).abs() < 1e-8,
                            "{label}: rho[{i}] diverged: {} vs {}",
                            rho[i],
                            r[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn table7_variants_valid() {
        for (label, pl, ls) in table7_variants() {
            let mut cfg = table1(500, 32, Ordering::RowMajor);
            cfg.particle_layout = pl;
            cfg.loop_structure = ls;
            Simulation::new(cfg).unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}
