//! Fixed-width text-table printing for the harness binaries, so their
//! output reads like the paper's tables.

/// A simple left-header table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<w$}", c, w = width[i])
                    } else {
                        format!("{:>w$}", c, w = width[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with 2 decimals.
pub fn secs(t: f64) -> String {
    format!("{t:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Format millions with 1 decimal.
pub fn millions(x: f64) -> String {
    format!("{:.1}", x / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Ordering", "L2", "L3"]);
        t.row(&["Row-major".into(), "43.3".into(), "4.94".into()]);
        t.row(&["Morton".into(), "27.0".into(), "3.20".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Ordering"));
        assert!(lines[2].contains("43.3"));
        // Right-aligned numeric columns line up.
        let c1 = lines[2].find("43.3").unwrap() + 4;
        let c2 = lines[3].find("27.0").unwrap() + 4;
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(f1(43.26), "43.3");
        assert_eq!(pct(36.04), "36.0%");
        assert_eq!(millions(65_400_000.0), "65.4");
    }
}
