//! The STREAM kernels (McCalpin 1995) — the sustained-bandwidth ceiling the
//! paper compares its particle loops against in Fig. 8.
//!
//! Four canonical kernels over `f64` arrays: copy (`c = a`), scale
//! (`b = s·c`), add (`c = a + b`), triad (`a = b + s·c`). Bandwidth counts
//! bytes read + written per element, as STREAM does (2, 2, 3, 3 × 8 bytes).

use rayon::prelude::*;
use std::time::Instant;

/// Result of one kernel run.
#[derive(Debug, Clone, Copy)]
pub struct StreamResult {
    /// Best (max) bandwidth over the repetitions, bytes/second.
    pub best_bytes_per_s: f64,
    /// Mean bandwidth, bytes/second.
    pub mean_bytes_per_s: f64,
}

impl StreamResult {
    /// Best bandwidth in GB/s (decimal).
    pub fn gbs(&self) -> f64 {
        self.best_bytes_per_s / 1e9
    }
}

fn time_kernel(reps: usize, bytes_per_rep: f64, mut f: impl FnMut()) -> StreamResult {
    let mut best = f64::MAX;
    let mut total = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    StreamResult {
        best_bytes_per_s: bytes_per_rep / best,
        mean_bytes_per_s: bytes_per_rep * reps as f64 / total,
    }
}

/// STREAM triad `a = b + s·c`, parallel over `threads` rayon tasks.
pub fn triad(n: usize, reps: usize, pool: &rayon::ThreadPool) -> StreamResult {
    let mut a = vec![0.0f64; n];
    let b = vec![1.5f64; n];
    let c = vec![2.5f64; n];
    let s = 3.0f64;
    let r = time_kernel(reps, (3 * 8 * n) as f64, || {
        pool.install(|| {
            a.par_chunks_mut(65536)
                .zip(b.par_chunks(65536))
                .zip(c.par_chunks(65536))
                .for_each(|((a, b), c)| {
                    for i in 0..a.len() {
                        a[i] = b[i] + s * c[i];
                    }
                });
        });
    });
    assert_eq!(a[0], 1.5 + 3.0 * 2.5);
    r
}

/// STREAM copy `c = a`.
pub fn copy(n: usize, reps: usize, pool: &rayon::ThreadPool) -> StreamResult {
    let a = vec![1.0f64; n];
    let mut c = vec![0.0f64; n];
    let r = time_kernel(reps, (2 * 8 * n) as f64, || {
        pool.install(|| {
            c.par_chunks_mut(65536)
                .zip(a.par_chunks(65536))
                .for_each(|(c, a)| c.copy_from_slice(a));
        });
    });
    assert_eq!(c[0], 1.0);
    r
}

/// STREAM scale `b = s·c`.
pub fn scale(n: usize, reps: usize, pool: &rayon::ThreadPool) -> StreamResult {
    let c = vec![2.0f64; n];
    let mut b = vec![0.0f64; n];
    let s = 0.5f64;
    let r = time_kernel(reps, (2 * 8 * n) as f64, || {
        pool.install(|| {
            b.par_chunks_mut(65536)
                .zip(c.par_chunks(65536))
                .for_each(|(b, c)| {
                    for i in 0..b.len() {
                        b[i] = s * c[i];
                    }
                });
        });
    });
    assert_eq!(b[0], 1.0);
    r
}

/// STREAM add `c = a + b`.
pub fn add(n: usize, reps: usize, pool: &rayon::ThreadPool) -> StreamResult {
    let a = vec![1.0f64; n];
    let b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    let r = time_kernel(reps, (3 * 8 * n) as f64, || {
        pool.install(|| {
            c.par_chunks_mut(65536)
                .zip(a.par_chunks(65536))
                .zip(b.par_chunks(65536))
                .for_each(|((c, a), b)| {
                    for i in 0..c.len() {
                        c[i] = a[i] + b[i];
                    }
                });
        });
    });
    assert_eq!(c[0], 3.0);
    r
}

/// Build a rayon pool with `threads` workers.
pub fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("rayon pool")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_run_and_report_positive_bandwidth() {
        let p = pool(2);
        let n = 1 << 16;
        for r in [
            copy(n, 3, &p),
            scale(n, 3, &p),
            add(n, 3, &p),
            triad(n, 3, &p),
        ] {
            assert!(r.best_bytes_per_s > 0.0);
            assert!(r.mean_bytes_per_s > 0.0);
            assert!(r.best_bytes_per_s >= r.mean_bytes_per_s * 0.99);
        }
    }
}
