//! The STREAM kernels (McCalpin 1995) — the sustained-bandwidth ceiling the
//! paper compares its particle loops against in Fig. 8.
//!
//! Four canonical kernels over `f64` arrays: copy (`c = a`), scale
//! (`b = s·c`), add (`c = a + b`), triad (`a = b + s·c`). Bandwidth counts
//! bytes read + written per element, as STREAM does (2, 2, 3, 3 × 8 bytes).
//! Parallelism comes from `pic_core::par` scoped threads: each kernel splits
//! its arrays into `threads` contiguous chunks, one per worker.

use std::time::Instant;

/// Result of one kernel run.
#[derive(Debug, Clone, Copy)]
pub struct StreamResult {
    /// Best (max) bandwidth over the repetitions, bytes/second.
    pub best_bytes_per_s: f64,
    /// Mean bandwidth, bytes/second.
    pub mean_bytes_per_s: f64,
}

impl StreamResult {
    /// Best bandwidth in GB/s (decimal).
    pub fn gbs(&self) -> f64 {
        self.best_bytes_per_s / 1e9
    }
}

fn time_kernel(reps: usize, bytes_per_rep: f64, mut f: impl FnMut()) -> StreamResult {
    let mut best = f64::MAX;
    let mut total = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    StreamResult {
        best_bytes_per_s: bytes_per_rep / best,
        mean_bytes_per_s: bytes_per_rep * reps as f64 / total,
    }
}

/// Chunk length that splits `n` elements across `threads` workers.
fn chunk_len(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(1)
}

/// STREAM triad `a = b + s·c`, parallel over `threads` workers.
pub fn triad(n: usize, reps: usize, threads: usize) -> StreamResult {
    let mut a = vec![0.0f64; n];
    let b = vec![1.5f64; n];
    let c = vec![2.5f64; n];
    let s = 3.0f64;
    let len = chunk_len(n, threads);
    let r = time_kernel(reps, (3 * 8 * n) as f64, || {
        let work: Vec<_> = a
            .chunks_mut(len)
            .zip(b.chunks(len).zip(c.chunks(len)))
            .collect();
        pic_core::par::for_each(work, |(a, (b, c))| {
            for i in 0..a.len() {
                a[i] = b[i] + s * c[i];
            }
        });
    });
    assert_eq!(a[0], 1.5 + 3.0 * 2.5);
    r
}

/// STREAM copy `c = a`.
pub fn copy(n: usize, reps: usize, threads: usize) -> StreamResult {
    let a = vec![1.0f64; n];
    let mut c = vec![0.0f64; n];
    let len = chunk_len(n, threads);
    let r = time_kernel(reps, (2 * 8 * n) as f64, || {
        let work: Vec<_> = c.chunks_mut(len).zip(a.chunks(len)).collect();
        pic_core::par::for_each(work, |(c, a)| c.copy_from_slice(a));
    });
    assert_eq!(c[0], 1.0);
    r
}

/// STREAM scale `b = s·c`.
pub fn scale(n: usize, reps: usize, threads: usize) -> StreamResult {
    let c = vec![2.0f64; n];
    let mut b = vec![0.0f64; n];
    let s = 0.5f64;
    let len = chunk_len(n, threads);
    let r = time_kernel(reps, (2 * 8 * n) as f64, || {
        let work: Vec<_> = b.chunks_mut(len).zip(c.chunks(len)).collect();
        pic_core::par::for_each(work, |(b, c)| {
            for i in 0..b.len() {
                b[i] = s * c[i];
            }
        });
    });
    assert_eq!(b[0], 1.0);
    r
}

/// STREAM add `c = a + b`.
pub fn add(n: usize, reps: usize, threads: usize) -> StreamResult {
    let a = vec![1.0f64; n];
    let b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    let len = chunk_len(n, threads);
    let r = time_kernel(reps, (3 * 8 * n) as f64, || {
        let work: Vec<_> = c
            .chunks_mut(len)
            .zip(a.chunks(len).zip(b.chunks(len)))
            .collect();
        pic_core::par::for_each(work, |(c, (a, b))| {
            for i in 0..c.len() {
                c[i] = a[i] + b[i];
            }
        });
    });
    assert_eq!(c[0], 3.0);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_run_and_report_positive_bandwidth() {
        let n = 1 << 16;
        for r in [copy(n, 3, 2), scale(n, 3, 2), add(n, 3, 2), triad(n, 3, 2)] {
            assert!(r.best_bytes_per_s > 0.0);
            assert!(r.mean_bytes_per_s > 0.0);
            assert!(r.best_bytes_per_s >= r.mean_bytes_per_s * 0.99);
        }
    }
}
