//! Elastic recovery benchmark: what does a kill → rejoin episode cost in
//! wall time, and does the weighted live re-cut keep per-rank loads
//! bounded where static equal-area cuts collapse?
//!
//! Two sections land in `results/BENCH_elastic.json`:
//!
//! * **load balance** (gating, deterministic) — three skewed per-cell
//!   histograms (gaussian blob, hot band, hot quadrant) on a 64×64 grid,
//!   cut 8 ways under Morton and Hilbert orderings. The static
//!   equal-cell-count cut must collapse (max/ideal ≥ 1.8) while the
//!   weighted re-cut stays within the provable bound
//!   `max ≤ total/nparts + wmax` and max/ideal ≤ 1.5.
//! * **recovery timing** (report-only) — a 4-rank elastic run with one
//!   spare: rank 2 is killed mid-flight, the spare is admitted into its
//!   slot, the group rolls back and replays. Wall time is compared
//!   against the fault-free elastic run of the same schedule, and the
//!   post-rejoin per-slot particle loads are reported.
//!
//! Usage: bench_elastic [--particles N] [--steps S]

use decomp::{
    run_elastic_member, run_elastic_spare, DecompConfig, ElasticConfig, ElasticOutcome, Partition,
    SolverMode,
};
use minimpi::{FaultPlan, World};
use pic_bench::cli::Args;
use pic_bench::report::{results_path, write_json_file, Json};
use pic_core::sim::PicConfig;
use pic_core::PicError;
use sfc::Ordering;
use std::time::{Duration, Instant};

const GRID: usize = 64;
const NPARTS: usize = 8;
const ACTIVE: usize = 4;

// ---------------------------------------------------------------------------
// Section 1: static vs weighted cuts under skewed histograms.
// ---------------------------------------------------------------------------

/// A named analytic weight field, evaluated per cell coordinate.
type Scenario = (&'static str, fn(usize, usize) -> f64);

fn scenarios() -> Vec<Scenario> {
    fn gaussian_blob(ix: usize, iy: usize) -> f64 {
        let (cx, cy, sigma) = (8.0, 8.0, 4.0);
        let d2 = (ix as f64 - cx).powi(2) + (iy as f64 - cy).powi(2);
        1.0 + 400.0 * (-d2 / (2.0 * sigma * sigma)).exp()
    }
    fn hot_band(_ix: usize, iy: usize) -> f64 {
        if iy < 4 {
            100.0
        } else {
            1.0
        }
    }
    fn hot_quadrant(ix: usize, iy: usize) -> f64 {
        if ix < GRID / 2 && iy < GRID / 2 {
            50.0
        } else {
            1.0
        }
    }
    vec![
        ("gaussian-blob", gaussian_blob),
        ("hot-band", hot_band),
        ("hot-quadrant", hot_quadrant),
    ]
}

/// Per-part load under a partition: sum of weights over each cell range.
fn part_loads(p: &Partition, weights: &[f64]) -> Vec<f64> {
    (0..p.nranks())
        .map(|r| p.range(r).map(|c| weights[c]).sum())
        .collect()
}

struct CutResult {
    name: &'static str,
    ordering: Ordering,
    total: f64,
    wmax: f64,
    static_ratio: f64,
    weighted_ratio: f64,
    bound_ok: bool,
}

fn cut_comparison() -> Result<Vec<CutResult>, PicError> {
    let mut out = Vec::new();
    for ordering in [Ordering::Morton, Ordering::Hilbert] {
        for (name, field) in scenarios() {
            let stat = Partition::new(ordering, GRID, GRID, NPARTS)
                .map_err(|e| PicError::Config(e.to_string()))?;
            // Weights live in the ordering's linearized cell space — the
            // same space `particle_cell_weights` fills from particle cell
            // codes — so an analytic field is scattered through encode().
            let mut weights = vec![0.0; stat.ncells()];
            for iy in 0..GRID {
                for ix in 0..GRID {
                    weights[stat.layout().encode(ix, iy)] = field(ix, iy);
                }
            }
            let total: f64 = weights.iter().sum();
            let wmax = weights.iter().cloned().fold(0.0, f64::max);
            let ideal = total / NPARTS as f64;

            let weighted = stat
                .recut_weighted(&weights, NPARTS)
                .map_err(|e| PicError::Config(e.to_string()))?;
            let smax = part_loads(&stat, &weights).into_iter().fold(0.0, f64::max);
            let wloads = part_loads(&weighted, &weights);
            let wmax_load = wloads.iter().cloned().fold(0.0, f64::max);

            out.push(CutResult {
                name,
                ordering,
                total,
                wmax,
                static_ratio: smax / ideal,
                weighted_ratio: wmax_load / ideal,
                bound_ok: wmax_load <= ideal + wmax + 1e-9,
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Section 2: kill → rejoin episode timing.
// ---------------------------------------------------------------------------

fn elastic_cfg(n: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.ordering = Ordering::Hilbert;
    cfg.sort_period = 2;
    cfg
}

fn elastic_ecfg() -> ElasticConfig {
    ElasticConfig {
        checkpoint_every: 2,
        recut_every: 3,
        slab_floor: 2,
        max_recoveries: 4,
        heartbeat_timeout: None,
        recv_deadline: Some(Duration::from_secs(10)),
        join_deadline: Duration::from_secs(30),
        admit_attempts: 100,
    }
}

fn elastic_run(
    n: usize,
    steps: u64,
    spares: usize,
    plan: Option<FaultPlan>,
) -> (f64, Vec<ElasticOutcome>) {
    let t = Instant::now();
    let outs = World::run_elastic(ACTIVE, spares, plan, move |comm| {
        let e = elastic_ecfg();
        let d = DecompConfig {
            solver: SolverMode::Slab,
            ..DecompConfig::default()
        };
        if comm.is_member() {
            run_elastic_member(comm, elastic_cfg(n), d, &e, steps).unwrap()
        } else {
            run_elastic_spare(comm, elastic_cfg(n), d, &e, steps).unwrap()
        }
    });
    (t.elapsed().as_secs_f64(), outs)
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let n = args.get("particles", 40_000usize);
    let steps = args.get("steps", 10u64);

    // -- load balance -------------------------------------------------------
    let cuts = cut_comparison()?;
    let mut scenario_json = Vec::new();
    let mut weighted_bounded = true;
    let mut static_collapses = true;
    for c in &cuts {
        println!(
            "  {:>7?} {:<13} static max/ideal {:.2}, weighted {:.2} (bound {})",
            c.ordering,
            c.name,
            c.static_ratio,
            c.weighted_ratio,
            if c.bound_ok { "ok" } else { "VIOLATED" }
        );
        weighted_bounded &= c.bound_ok && c.weighted_ratio <= 1.5;
        static_collapses &= c.static_ratio >= 1.8;
        scenario_json.push(Json::obj([
            ("name", Json::s(c.name)),
            ("ordering", Json::Str(format!("{:?}", c.ordering))),
            ("total_weight", Json::Num(c.total)),
            ("max_cell_weight", Json::Num(c.wmax)),
            ("static_max_over_ideal", Json::Num(c.static_ratio)),
            ("weighted_max_over_ideal", Json::Num(c.weighted_ratio)),
            ("weighted_within_bound", Json::Bool(c.bound_ok)),
        ]));
    }
    if !weighted_bounded {
        return Err(PicError::Diverged(
            "weighted re-cut exceeded its load bound under a skewed histogram".into(),
        ));
    }
    if !static_collapses {
        return Err(PicError::Diverged(
            "static cuts did not collapse — the skew scenarios lost their teeth".into(),
        ));
    }
    println!("  load balance: weighted re-cut bounded on all skews, static cuts collapse");

    // -- recovery timing ----------------------------------------------------
    let (base_s, base) = elastic_run(n, steps, 0, None);
    if !base.iter().all(|o| o.survivor && o.recoveries == 0) {
        return Err(PicError::Diverged(
            "fault-free elastic run recovered".into(),
        ));
    }
    let plan = FaultPlan::new(0xBE7A).kill_rank(2, 40);
    let (fault_s, outs) = elastic_run(n, steps, 1, Some(plan));
    let joiner = &outs[ACTIVE];
    if !(joiner.joined && joiner.slot == Some(2)) {
        return Err(PicError::Diverged(
            "spare was not admitted into the dead rank's slot".into(),
        ));
    }
    let survivors: Vec<&ElasticOutcome> = outs
        .iter()
        .filter(|o| o.survivor && o.slot.is_some())
        .collect();
    if survivors.len() != ACTIVE || survivors.iter().any(|o| o.steps != steps) {
        return Err(PicError::Diverged("rejoined group did not finish".into()));
    }
    let held: usize = survivors.iter().map(|o| o.particles.len()).sum();
    if held != n {
        return Err(PicError::Diverged(format!(
            "particles lost across the rejoin: {held} of {n}"
        )));
    }
    let loads: Vec<usize> = survivors.iter().map(|o| o.particles.len()).collect();
    let max_load = *loads.iter().max().unwrap() as f64;
    let avg_load = n as f64 / ACTIVE as f64;
    let recoveries = survivors.iter().map(|o| o.recoveries).max().unwrap();
    println!(
        "  recovery: fault-free {base_s:.3}s, kill+rejoin {fault_s:.3}s \
         ({recoveries} recovery, post-rejoin max/avg load {:.2})",
        max_load / avg_load
    );

    let json = Json::obj([
        (
            "load_balance",
            Json::obj([
                ("grid", Json::Str(format!("{GRID}x{GRID}"))),
                ("nparts", Json::Int(NPARTS as i64)),
                ("scenarios", Json::Arr(scenario_json)),
                ("weighted_bounded", Json::Bool(weighted_bounded)),
                ("static_collapses", Json::Bool(static_collapses)),
            ]),
        ),
        (
            "recovery",
            Json::obj([
                ("particles", Json::Int(n as i64)),
                ("steps", Json::Int(steps as i64)),
                ("ranks", Json::Int(ACTIVE as i64)),
                ("fault_free_s", Json::Num(base_s)),
                ("kill_rejoin_s", Json::Num(fault_s)),
                ("overhead_s", Json::Num(fault_s - base_s)),
                ("recoveries", Json::Int(recoveries as i64)),
                ("post_rejoin_max_over_avg", Json::Num(max_load / avg_load)),
            ]),
        ),
    ]);
    let path = results_path("BENCH_elastic.json");
    write_json_file(&path, &json).map_err(|e| PicError::Io(e.to_string()))?;
    println!("wrote {}", path.display());
    Ok(())
}
