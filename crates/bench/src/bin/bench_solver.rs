//! Field-solve scaling: serial vs pool-parallel vs slab-distributed
//! spectral Poisson solve.
//!
//! Three measurement families, one JSON (`results/BENCH_solver.json`):
//!
//! * **pooled** — `solve_e_with` (serial) against `solve_e_pooled` on a
//!   persistent `ThreadPool` of 1/2/4 workers, grids 64²–1024², best-of
//!   reps. Gate: 4 threads must not lose to serial at 256² and above —
//!   the pool-parallel path is the simulation default whenever
//!   `cfg.threads > 1`, so a regression here slows every hybrid run.
//! * **slab** — the distributed `SlabSolver` at 1/2/4 ranks (row-slab
//!   ownership), 256² and 512². Per-rank solve wall time (max over ranks,
//!   best-of reps) and per-rank persistent grid bytes. Gates: both must
//!   *shrink* as ranks grow — the whole point of not gathering to a root.
//! * the table printed to stdout for eyeballing.
//!
//! Wall times are in-process (`minimpi` ranks are threads), so treat the
//! slab numbers as memory-bandwidth-bound transpose costs, not network
//! costs.

use decomp::SlabSolver;
use minimpi::World;
use pic_bench::report::{results_path, write_json_file, Json};
use pic_bench::table::Table;
use pic_core::pool::{chunk_range, ThreadPool};
use pic_core::PicError;
use spectral::poisson::{PoissonSolver2D, SolveScratch};
use std::time::Instant;

const POOLED_GRIDS: [usize; 5] = [64, 128, 256, 512, 1024];
const SLAB_GRIDS: [usize; 2] = [256, 512];
const THREADS: [usize; 3] = [1, 2, 4];
const RANKS: [usize; 3] = [1, 2, 4];
const REPS: usize = 5;
const GATE_GRID: usize = 256;
/// Wall-clock noise margin for the pooled gate: on a single-core box the
/// pool cannot beat serial by concurrency, only by the tiled-transpose
/// column pass, so tolerate scheduler jitter around parity.
const NOISE: f64 = 1.05;
/// Above this grid the transpose buffers (≥16 MiB each) blow the last
/// cache level and the out-of-place passes pay streaming traffic the
/// strided serial path does not; gate only against a gross regression.
const CACHE_BOUND_GRID: usize = 1024;
const CACHE_BOUND_NOISE: f64 = 1.25;
const SLAB_TAG: u64 = 1 << 41;

fn test_rho(n: usize) -> Vec<f64> {
    // Structure-rich but cheap: a few incommensurate modes.
    (0..n)
        .map(|i| {
            let x = i as f64 * 0.001;
            (x).sin() + 0.5 * (2.7 * x).cos() + 0.25 * (13.1 * x).sin()
        })
        .collect()
}

struct PooledSample {
    grid: usize,
    /// 0 = serial `solve_e_with`; otherwise pool width.
    threads: usize,
    secs: f64,
}

fn bench_pooled(grid: usize) -> Vec<PooledSample> {
    let n = grid * grid;
    let solver = PoissonSolver2D::new(grid, grid, 1.0, 1.0).unwrap();
    let rho = test_rho(n);
    let (mut ex, mut ey) = (vec![0.0; n], vec![0.0; n]);
    let mut scratch = SolveScratch::new();
    let mut out = Vec::new();

    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        solver.solve_e_with(&rho, &mut ex, &mut ey, &mut scratch);
        best = best.min(t.elapsed().as_secs_f64());
    }
    out.push(PooledSample {
        grid,
        threads: 0,
        secs: best,
    });

    for &threads in &THREADS {
        let pool = ThreadPool::new(threads);
        // Warm the scratch (tbuf) outside the timed region.
        solver.solve_e_pooled(&rho, &mut ex, &mut ey, &mut scratch, &pool);
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t = Instant::now();
            solver.solve_e_pooled(&rho, &mut ex, &mut ey, &mut scratch, &pool);
            best = best.min(t.elapsed().as_secs_f64());
        }
        out.push(PooledSample {
            grid,
            threads,
            secs: best,
        });
    }
    out
}

struct SlabSample {
    grid: usize,
    ranks: usize,
    /// Slowest rank's best-of-reps whole-solve wall time. On a single-core
    /// container the ranks time-share one CPU, so this is the makespan of
    /// the whole exchange-and-solve pipeline, not a per-rank cost.
    max_wall_secs: f64,
    /// Slowest rank's best-of-reps *compute* time (wall minus the time
    /// inside `try_all_to_all`): the per-rank FFT/scale/pack work, which
    /// must shrink ~1/p — this is what scales on real multicore hosts.
    max_compute_secs: f64,
    /// Per-rank persistent slab-buffer bytes (max over ranks).
    bytes_per_rank: u64,
}

fn bench_slab(grid: usize, ranks: usize) -> SlabSample {
    let n = grid * grid;
    let out = World::run(ranks, move |comm| {
        // Row-slab point ownership: rank r owns the rows of its slab, and
        // needs E exactly there — the layout a RowMajor partition induces.
        let owned: Vec<Vec<usize>> = (0..ranks)
            .map(|r| {
                let (r0, r1) = chunk_range(grid, ranks, r);
                (r0 * grid..r1 * grid).collect()
            })
            .collect();
        let mut slab =
            SlabSolver::new(grid, grid, 1.0, 1.0, comm.rank(), ranks, &owned, &owned).unwrap();
        let rho = test_rho(n);
        let (mut ex, mut ey) = (vec![0.0; n], vec![0.0; n]);
        let (mut best_wall, mut best_compute) = (f64::INFINITY, f64::INFINITY);
        for rep in 0..REPS as u64 {
            let c0 = comm.comm_time();
            let t = Instant::now();
            slab.solve(comm, &rho, &mut ex, &mut ey, SLAB_TAG + 8 * rep)
                .unwrap();
            let wall = t.elapsed().as_secs_f64();
            best_wall = best_wall.min(wall);
            best_compute = best_compute.min((wall - (comm.comm_time() - c0)).max(0.0));
        }
        (best_wall, best_compute, slab.solver_bytes())
    });
    SlabSample {
        grid,
        ranks,
        max_wall_secs: out.iter().map(|&(w, _, _)| w).fold(0.0, f64::max),
        max_compute_secs: out.iter().map(|&(_, c, _)| c).fold(0.0, f64::max),
        bytes_per_rank: out.iter().map(|&(_, _, b)| b).max().unwrap(),
    }
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let mut violations: Vec<String> = Vec::new();

    // ---- pooled ----
    let mut pooled: Vec<PooledSample> = Vec::new();
    let mut table = Table::new(&["grid", "serial ms", "1T ms", "2T ms", "4T ms", "4T speedup"]);
    for &grid in &POOLED_GRIDS {
        let samples = bench_pooled(grid);
        let ms = |threads: usize| {
            samples
                .iter()
                .find(|s| s.threads == threads)
                .map(|s| s.secs * 1e3)
                .unwrap()
        };
        table.row(&[
            format!("{grid}x{grid}"),
            format!("{:.3}", ms(0)),
            format!("{:.3}", ms(1)),
            format!("{:.3}", ms(2)),
            format!("{:.3}", ms(4)),
            format!("{:.2}x", ms(0) / ms(4)),
        ]);
        let margin = if grid >= CACHE_BOUND_GRID {
            CACHE_BOUND_NOISE
        } else {
            NOISE
        };
        if grid >= GATE_GRID && ms(4) > ms(0) * margin {
            violations.push(format!(
                "pooled @ {grid}²: 4 threads {:.3} ms slower than serial {:.3} ms",
                ms(4),
                ms(0)
            ));
        }
        pooled.extend(samples);
    }
    println!("pool-parallel solve (best of {REPS}):");
    print!("{}", table.render());

    // ---- slab ----
    let mut slab: Vec<SlabSample> = Vec::new();
    let mut table = Table::new(&["grid", "ranks", "wall ms", "compute ms", "KiB/rank"]);
    for &grid in &SLAB_GRIDS {
        for &ranks in &RANKS {
            let s = bench_slab(grid, ranks);
            table.row(&[
                format!("{grid}x{grid}"),
                s.ranks.to_string(),
                format!("{:.3}", s.max_wall_secs * 1e3),
                format!("{:.3}", s.max_compute_secs * 1e3),
                format!("{}", s.bytes_per_rank / 1024),
            ]);
            slab.push(s);
        }
        let at = |ranks: usize| {
            slab.iter()
                .find(|s| s.grid == grid && s.ranks == ranks)
                .unwrap()
        };
        for ranks in [2usize, 4] {
            if at(ranks).bytes_per_rank >= at(1).bytes_per_rank {
                violations.push(format!(
                    "slab @ {grid}²: {ranks}-rank per-rank memory {} B not below 1-rank {} B",
                    at(ranks).bytes_per_rank,
                    at(1).bytes_per_rank
                ));
            }
            // Per-rank solve *compute* must shrink with ranks. (Makespan
            // cannot shrink on this single-CPU container, where all ranks
            // time-share one core — it is reported, not gated.)
            if at(ranks).max_compute_secs >= at(1).max_compute_secs {
                violations.push(format!(
                    "slab @ {grid}²: {ranks}-rank compute {:.3} ms not below 1-rank {:.3} ms",
                    at(ranks).max_compute_secs * 1e3,
                    at(1).max_compute_secs * 1e3
                ));
            }
        }
    }
    println!("\nslab-distributed solve (best of {REPS}, max over ranks):");
    print!("{}", table.render());

    // ---- JSON ----
    let json = Json::obj([
        ("reps", Json::Int(REPS as i64)),
        (
            "pooled",
            Json::Arr(
                pooled
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("grid", Json::Int(s.grid as i64)),
                            (
                                "mode",
                                Json::s(if s.threads == 0 { "serial" } else { "pooled" }),
                            ),
                            ("threads", Json::Int(s.threads.max(1) as i64)),
                            ("secs", Json::Num(s.secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "slab",
            Json::Arr(
                slab.iter()
                    .map(|s| {
                        Json::obj([
                            ("grid", Json::Int(s.grid as i64)),
                            ("ranks", Json::Int(s.ranks as i64)),
                            ("max_wall_secs", Json::Num(s.max_wall_secs)),
                            ("max_compute_secs", Json::Num(s.max_compute_secs)),
                            ("bytes_per_rank", Json::Int(s.bytes_per_rank as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "gates",
            Json::Arr(vec![
                Json::s("pooled 4T <= serial (5% noise margin) at 256²+"),
                Json::s("slab per-rank bytes shrink at 2/4 ranks"),
                Json::s("slab per-rank solve compute shrinks at 2/4 ranks"),
            ]),
        ),
    ]);
    let path = results_path("BENCH_solver.json");
    write_json_file(&path, &json).map_err(|e| PicError::Io(format!("{}: {e}", path.display())))?;
    println!("\nwrote {}", path.display());

    if !violations.is_empty() {
        return Err(PicError::Diverged(format!(
            "solver gate failed: {}",
            violations.join("; ")
        )));
    }
    println!(
        "gates passed: pooled holds at 256²+, slab shrinks per-rank memory and compute with ranks"
    );
    Ok(())
}
