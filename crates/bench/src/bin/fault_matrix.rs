//! Fault-matrix gate for `scripts/check.sh`: fixed-seed fault scenarios
//! that must all recover AND reproduce the fault-free trajectory bitwise.
//!
//! Five scenarios, all on a small Landau workload so the release-mode run
//! stays under a couple of seconds:
//!
//! * **drop+corrupt** — 4 ranks over a link dropping 25% and corrupting
//!   15% of frames; the ack/retry transport must hide it completely.
//! * **kill@2** / **kill@4** — the last rank is killed mid-step on 2- and
//!   4-rank runs; survivors must detect, shrink, roll back to the buddy
//!   checkpoint, and finish with ρ bit-identical per logical rank.
//! * **p2p drop+corrupt** — the same lossy link under the *decomposed*
//!   runtime, whose halo/gather/scatter/migration traffic is all
//!   point-to-point; retries must hide the faults bit-exactly and land in
//!   the `FaultLog` ledger.
//! * **p2p kill** — a rank dies mid-step under the decomposed runtime;
//!   every rank must surface a `CommError` (never deadlock) and the
//!   ledgers must record the kill and the survivor-side timeouts/retries.
//! * **a2a drop+corrupt** — the slab solver's four all-to-all exchanges
//!   per solve under the lossy link; the distributed transpose must come
//!   out bit-exact and the retransmissions must show up as `Retry`
//!   transport events.
//! * **a2a kill** — a rank dies between all-to-all rounds mid-solve;
//!   every rank's `SlabSolver::solve` must surface an error, never hang.
//! * **chaos rejoin** — the elastic runner's full recovery loop: a rank is
//!   killed mid-run, the group shrinks, a waiting spare is voted in,
//!   adopts the dead rank's slot, and the run replays through its
//!   scheduled re-cuts — final per-slot state must be bit-exact against
//!   the fault-free run of the same schedule.
//! * **chaos degrade** — repeated kills with no spares drive a 4-rank slab
//!   run down the degradation ladder (slab → root-gather below the floor →
//!   replicated at one survivor) with every transition ledgered and the
//!   full particle population conserved exactly.
//!
//! Any mismatch or failed recovery exits nonzero, so check.sh can gate on
//! it. Seeds are fixed: the scenarios are deterministic, not sampled.

use decomp::{
    run_elastic_member, run_elastic_spare, DecompConfig, DecomposedSimulation, ElasticConfig,
    ElasticOutcome, SlabSolver, SolverMode,
};
use minimpi::{Comm, FaultPlan, TransportEventKind, World};
use pic_core::faultlog::FaultKind;
use pic_core::pool::chunk_range;
use pic_core::resilience::{run_resilient_distributed, DistConfig};
use pic_core::sim::{PicConfig, Simulation};
use pic_core::PicError;
use sfc::Ordering;
use std::collections::BTreeMap;
use std::time::Duration;

const N: usize = 2_000;
const STEPS: u64 = 6;
// Lands in step 3's reduction, one step past the committed step-2
// checkpoint (init 2 ops, checkpointed step 4 ops, plain step 2 ops).
const KILL_OP: u64 = 13;

fn workload(id: usize, ranks: usize) -> PicConfig {
    let per = N / ranks;
    let mut cfg = PicConfig::landau_table1(N);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 0;
    cfg.keep_range = Some((id * per, (id + 1) * per));
    cfg
}

/// ρ per logical rank from a distributed run, merged across ranks.
type RhoById = BTreeMap<usize, Vec<f64>>;

fn merge(per_rank: Vec<RhoById>) -> RhoById {
    let mut all = RhoById::new();
    for m in per_rank {
        for (id, rho) in m {
            assert!(
                all.insert(id, rho).is_none(),
                "logical rank {id} hosted twice"
            );
        }
    }
    all
}

fn resilient_body(ranks: usize) -> impl Fn(&mut Comm) -> (bool, usize, RhoById) + Send + Sync {
    move |comm| {
        let make_cfg = move |id: usize| workload(id, ranks);
        let rcfg = DistConfig {
            checkpoint_every: 2,
            max_recoveries: 2,
            heartbeat_timeout: None,
            recv_deadline: Some(Duration::from_secs(10)),
        };
        let out = run_resilient_distributed(comm, &make_cfg, STEPS, &rcfg).unwrap();
        let rhos = out
            .sims
            .iter()
            .map(|(id, sim)| (*id, sim.rho().to_vec()))
            .collect();
        (out.survivor, out.recoveries, rhos)
    }
}

fn check_kill(ranks: usize) -> Result<(), PicError> {
    let clean = merge(
        World::run(ranks, resilient_body(ranks))
            .into_iter()
            .map(|(_, _, r)| r)
            .collect(),
    );
    let plan = FaultPlan::new(0xD1E).kill_rank(ranks - 1, KILL_OP);
    let outcomes = World::run_with_faults(ranks, plan, resilient_body(ranks));
    let mut recovered = false;
    for (rank, (survivor, recoveries, _)) in outcomes.iter().enumerate() {
        if rank == ranks - 1 && *survivor {
            return Err(PicError::Diverged(format!(
                "kill@{ranks}: rank {rank} should have died"
            )));
        }
        recovered |= *survivor && *recoveries > 0;
    }
    if !recovered {
        return Err(PicError::Diverged(format!(
            "kill@{ranks}: no survivor reported a recovery"
        )));
    }
    let faulty = merge(outcomes.into_iter().map(|(_, _, r)| r).collect());
    for (id, rho) in &clean {
        if faulty.get(id) != Some(rho) {
            return Err(PicError::Diverged(format!(
                "kill@{ranks}: logical rank {id} diverged from the fault-free run"
            )));
        }
    }
    println!(
        "  kill@{ranks}: recovered, {} logical ranks bit-exact",
        clean.len()
    );
    Ok(())
}

fn lossy_body(ranks: usize) -> impl Fn(&mut Comm) -> Vec<f64> + Send + Sync {
    move |comm| {
        let r = comm.rank();
        let mut sim = Simulation::new_with_reduce(workload(r, ranks), |rho| {
            comm.try_allreduce_sum_tree(rho, 1 << 40).unwrap()
        })
        .unwrap();
        for step in 0..STEPS {
            sim.step_with_reduce(|rho| {
                comm.try_allreduce_sum_tree(rho, step * 10_000)
                    .expect("recoverable fault rates must not surface errors")
            });
        }
        sim.rho().to_vec()
    }
}

fn check_drop_corrupt() -> Result<(), PicError> {
    let ranks = 4;
    let clean = World::run(ranks, lossy_body(ranks));
    let plan = FaultPlan::new(0xF417)
        .drop_messages(0.25)
        .corrupt_messages(0.15);
    let faulty = World::run_with_faults(ranks, plan, lossy_body(ranks));
    for rank in 0..ranks {
        if faulty[rank] != clean[rank] {
            return Err(PicError::Diverged(format!(
                "drop+corrupt: rank {rank} diverged from the fault-free run"
            )));
        }
    }
    println!("  drop+corrupt: {ranks} ranks bit-exact through lossy transport");
    Ok(())
}

fn decomp_cfg() -> PicConfig {
    let mut cfg = PicConfig::landau_table1(N);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.ordering = Ordering::Morton;
    cfg.sort_period = 2;
    cfg
}

fn decomp_body() -> impl Fn(&mut Comm) -> (Vec<f64>, usize) + Send + Sync {
    |comm| {
        let mut dsim =
            DecomposedSimulation::new(decomp_cfg(), DecompConfig::default(), comm).unwrap();
        dsim.run(STEPS as usize, comm).unwrap();
        let rho = dsim.sim().rho();
        let owned = dsim.plan().owned_points.iter().map(|&p| rho[p]).collect();
        (owned, dsim.fault_log().count(FaultKind::Retry))
    }
}

fn check_p2p_drop_corrupt() -> Result<(), PicError> {
    let ranks = 4;
    let clean = World::run(ranks, decomp_body());
    let plan = FaultPlan::new(0x9EE7)
        .drop_messages(0.25)
        .corrupt_messages(0.15);
    let faulty = World::run_with_faults(ranks, plan, decomp_body());
    for rank in 0..ranks {
        if faulty[rank].0 != clean[rank].0 {
            return Err(PicError::Diverged(format!(
                "p2p drop+corrupt: rank {rank} owned-rho diverged from the fault-free run"
            )));
        }
    }
    let retries: usize = faulty.iter().map(|(_, r)| r).sum();
    if retries == 0 {
        return Err(PicError::Diverged(
            "p2p drop+corrupt: no Retry event reached the fault ledger".into(),
        ));
    }
    println!(
        "  p2p drop+corrupt: {ranks} decomposed ranks bit-exact, {retries} retries in the ledger"
    );
    Ok(())
}

fn check_p2p_kill() -> Result<(), PicError> {
    let ranks = 2;
    // Past the init allreduce (< 5 ops), inside step 1 or 2 of the
    // 6-ops-per-step decomposed loop.
    let plan = FaultPlan::new(0xDEAD).kill_rank(1, 12);
    let outcomes = World::run_with_faults(ranks, plan, |comm| {
        // Deadline + heartbeat so the survivor can never block forever on
        // the dead peer, whichever op it is in when the kill lands.
        comm.set_recv_deadline(Duration::from_secs(1));
        comm.set_heartbeat_timeout(Duration::from_millis(200));
        let mut dsim =
            DecomposedSimulation::new(decomp_cfg(), DecompConfig::default(), comm).unwrap();
        let err = dsim.run(STEPS as usize, comm).err().map(|e| e.to_string());
        let log = dsim.fault_log();
        let kills = log.count(FaultKind::Kill);
        let survivor_side = log.count(FaultKind::Timeout)
            + log.count(FaultKind::Retry)
            + log.count(FaultKind::Detect);
        (err, kills, survivor_side)
    });
    let (dead_err, dead_kills, _) = &outcomes[1];
    if dead_err.is_none() || *dead_kills == 0 {
        return Err(PicError::Diverged(format!(
            "p2p kill: killed rank finished cleanly or logged no Kill event ({dead_err:?})"
        )));
    }
    let (surv_err, _, surv_events) = &outcomes[0];
    if surv_err.is_none() {
        return Err(PicError::Diverged(
            "p2p kill: survivor finished cleanly instead of surfacing a CommError".into(),
        ));
    }
    if *surv_events == 0 {
        return Err(PicError::Diverged(
            "p2p kill: survivor's fault ledger recorded no timeout/retry/detect".into(),
        ));
    }
    println!(
        "  p2p kill: both ranks surfaced errors without deadlock ({})",
        surv_err.as_deref().unwrap_or("")
    );
    Ok(())
}

const A2A_GRID: usize = 32;
const A2A_TAG: u64 = 1 << 39;

/// Row-slab point ownership for a standalone `SlabSolver`: rank r owns
/// (and wants E on) exactly the grid points of its row slab.
fn slab_points(ranks: usize) -> Vec<Vec<usize>> {
    (0..ranks)
        .map(|r| {
            let (r0, r1) = chunk_range(A2A_GRID, ranks, r);
            (r0 * A2A_GRID..r1 * A2A_GRID).collect()
        })
        .collect()
}

fn a2a_rho() -> Vec<f64> {
    (0..A2A_GRID * A2A_GRID)
        .map(|i| ((i * 37) % 97) as f64 * 0.01 - 0.4)
        .collect()
}

fn a2a_body(ranks: usize) -> impl Fn(&mut Comm) -> (Vec<u64>, Vec<u64>, usize) + Send + Sync {
    move |comm| {
        comm.set_recv_deadline(Duration::from_secs(10));
        let pts = slab_points(ranks);
        let mut slab =
            SlabSolver::new(A2A_GRID, A2A_GRID, 1.0, 1.0, comm.rank(), ranks, &pts, &pts).unwrap();
        let rho = a2a_rho();
        let n = A2A_GRID * A2A_GRID;
        let (mut ex, mut ey) = (vec![0.0; n], vec![0.0; n]);
        for step in 0..3u64 {
            slab.solve(comm, &rho, &mut ex, &mut ey, A2A_TAG + step * 8)
                .expect("recoverable fault rates must not surface errors");
        }
        let mine = &pts[comm.rank()];
        let exb = mine.iter().map(|&p| ex[p].to_bits()).collect();
        let eyb = mine.iter().map(|&p| ey[p].to_bits()).collect();
        let retries = comm
            .take_events()
            .iter()
            .filter(|e| e.kind == TransportEventKind::Retry)
            .count();
        (exb, eyb, retries)
    }
}

fn check_a2a_drop_corrupt() -> Result<(), PicError> {
    let ranks = 4;
    let clean = World::run(ranks, a2a_body(ranks));
    let plan = FaultPlan::new(0xA2A0)
        .drop_messages(0.25)
        .corrupt_messages(0.15);
    let faulty = World::run_with_faults(ranks, plan, a2a_body(ranks));
    for rank in 0..ranks {
        if faulty[rank].0 != clean[rank].0 || faulty[rank].1 != clean[rank].1 {
            return Err(PicError::Diverged(format!(
                "a2a drop+corrupt: rank {rank} slab E diverged from the fault-free run"
            )));
        }
    }
    let retries: usize = faulty.iter().map(|(_, _, r)| r).sum();
    if retries == 0 {
        return Err(PicError::Diverged(
            "a2a drop+corrupt: lossy all-to-all produced no Retry events".into(),
        ));
    }
    println!("  a2a drop+corrupt: {ranks}-rank slab solve bit-exact, {retries} retries recorded");
    Ok(())
}

fn check_a2a_kill() -> Result<(), PicError> {
    let ranks = 4;
    // Op 2 is the second all-to-all round: the kill lands between the
    // ρ-in exchange and the forward distributed transpose.
    let plan = FaultPlan::new(0xA2AD).kill_rank(1, 2);
    let outcomes = World::run_with_faults(ranks, plan, move |comm| {
        comm.set_recv_deadline(Duration::from_secs(1));
        let pts = slab_points(ranks);
        let mut slab =
            SlabSolver::new(A2A_GRID, A2A_GRID, 1.0, 1.0, comm.rank(), ranks, &pts, &pts).unwrap();
        let rho = a2a_rho();
        let n = A2A_GRID * A2A_GRID;
        let (mut ex, mut ey) = (vec![0.0; n], vec![0.0; n]);
        slab.solve(comm, &rho, &mut ex, &mut ey, A2A_TAG)
            .err()
            .map(|e| e.to_string())
    });
    for (rank, err) in outcomes.iter().enumerate() {
        if err.is_none() {
            return Err(PicError::Diverged(format!(
                "a2a kill: rank {rank} finished the solve cleanly instead of erroring"
            )));
        }
    }
    println!(
        "  a2a kill: all {ranks} ranks surfaced errors without deadlock ({})",
        outcomes[0].as_deref().unwrap_or("")
    );
    Ok(())
}

const CHAOS_STEPS: u64 = 8;

fn chaos_ecfg(recut_every: u64, slab_floor: usize) -> ElasticConfig {
    ElasticConfig {
        checkpoint_every: 2,
        recut_every,
        slab_floor,
        max_recoveries: 6,
        heartbeat_timeout: None,
        recv_deadline: Some(Duration::from_secs(5)),
        join_deadline: Duration::from_secs(30),
        admit_attempts: 100,
    }
}

fn chaos_world(spares: usize, plan: Option<FaultPlan>) -> Vec<ElasticOutcome> {
    World::run_elastic(4, spares, plan, move |comm| {
        let e = chaos_ecfg(3, 2);
        let d = DecompConfig::default();
        if comm.is_member() {
            run_elastic_member(comm, decomp_cfg(), d, &e, CHAOS_STEPS).unwrap()
        } else {
            run_elastic_spare(comm, decomp_cfg(), d, &e, CHAOS_STEPS).unwrap()
        }
    })
}

fn check_chaos_rejoin() -> Result<(), PicError> {
    let base = chaos_world(0, None);
    // Kill rank 2 mid-run; world rank 4 waits as a spare.
    let plan = FaultPlan::new(0xE1A5).kill_rank(2, 40);
    let outs = chaos_world(1, Some(plan));
    if outs[2].survivor {
        return Err(PicError::Diverged(
            "chaos rejoin: rank 2 should have died".into(),
        ));
    }
    if !outs[4].joined || outs[4].slot != Some(2) {
        return Err(PicError::Diverged(format!(
            "chaos rejoin: spare not admitted into the dead slot (joined={}, slot={:?})",
            outs[4].joined, outs[4].slot
        )));
    }
    for slot in 0..4usize {
        let b = base
            .iter()
            .find(|o| o.slot == Some(slot))
            .expect("baseline hosts every slot");
        let f = outs
            .iter()
            .find(|o| o.slot == Some(slot))
            .ok_or_else(|| PicError::Diverged(format!("chaos rejoin: slot {slot} unhosted")))?;
        if b.particles != f.particles
            || b.owned_points != f.owned_points
            || b.rho_owned != f.rho_owned
            || b.ex_owned != f.ex_owned
            || b.ey_owned != f.ey_owned
        {
            return Err(PicError::Diverged(format!(
                "chaos rejoin: slot {slot} diverged from the fault-free run"
            )));
        }
    }
    let mut log = pic_core::faultlog::FaultLog::new();
    for o in &outs {
        log.merge(o.log.clone());
    }
    if !log.has_sequence(&[
        FaultKind::Kill,
        FaultKind::Shrink,
        FaultKind::Join,
        FaultKind::Rollback,
        FaultKind::Recut,
    ]) {
        return Err(PicError::Diverged(
            "chaos rejoin: kill → shrink → join → rollback → recut not ledgered".into(),
        ));
    }
    println!("  chaos rejoin: kill → shrink → rejoin → recut, 4 slots bit-exact");
    Ok(())
}

fn check_chaos_degrade() -> Result<(), PicError> {
    // Staggered kills, each landing after the previous recovery completed,
    // driving 4 → 3 → 2 → 1 with a slab floor of 3.
    // Op counts are tuned to this config's schedule: each kill lands in
    // the replay window after the previous recovery's re-checkpoint.
    let plan = FaultPlan::new(0xDE64)
        .kill_rank(1, 40)
        .kill_rank(2, 80)
        .kill_rank(3, 108);
    let outs = World::run_elastic(4, 0, Some(plan), move |comm| {
        // No spares to admit: a single admission poll per recovery keeps
        // the op schedule deterministic against the kill plan above.
        let e = ElasticConfig {
            join_deadline: Duration::from_secs(1),
            admit_attempts: 1,
            ..chaos_ecfg(0, 3)
        };
        let d = DecompConfig {
            solver: SolverMode::Slab,
            ..DecompConfig::default()
        };
        run_elastic_member(comm, decomp_cfg(), d, &e, CHAOS_STEPS).unwrap()
    });
    let survivors: Vec<&ElasticOutcome> = outs.iter().filter(|o| o.survivor).collect();
    if survivors.len() != 1 {
        return Err(PicError::Diverged(format!(
            "chaos degrade: expected 1 survivor, got {}",
            survivors.len()
        )));
    }
    let last = survivors[0];
    if last.steps != CHAOS_STEPS
        || last.nslots != 1
        || last.mode != Some(SolverMode::RootGather)
        || last.particles.len() != N
    {
        return Err(PicError::Diverged(format!(
            "chaos degrade: survivor state wrong (steps={}, nslots={}, mode={:?}, particles={})",
            last.steps,
            last.nslots,
            last.mode,
            last.particles.len()
        )));
    }
    let mut log = pic_core::faultlog::FaultLog::new();
    for o in &outs {
        log.merge(o.log.clone());
    }
    // Below-floor downgrade (ledgered by both survivors of that recovery)
    // plus the replicated fallback (sole survivor): three Degrade events.
    if log.count(FaultKind::Degrade) != 3
        || !log.has_sequence(&[
            FaultKind::Kill,
            FaultKind::Shrink,
            FaultKind::Recut,
            FaultKind::Kill,
            FaultKind::Shrink,
            FaultKind::Degrade,
            FaultKind::Kill,
            FaultKind::Shrink,
            FaultKind::Degrade,
        ])
    {
        return Err(PicError::Diverged(
            "chaos degrade: degradation ladder not fully ledgered".into(),
        ));
    }
    println!(
        "  chaos degrade: slab → root-gather → replicated, {} particles conserved",
        last.particles.len()
    );
    Ok(())
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    println!("fault matrix ({N} particles, {STEPS} steps):");
    check_drop_corrupt()?;
    check_kill(2)?;
    check_kill(4)?;
    check_p2p_drop_corrupt()?;
    check_p2p_kill()?;
    check_a2a_drop_corrupt()?;
    check_a2a_kill()?;
    check_chaos_rejoin()?;
    check_chaos_degrade()?;
    println!("fault matrix: all scenarios recovered bit-exact");
    Ok(())
}
