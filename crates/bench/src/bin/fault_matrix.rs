//! Fault-matrix gate for `scripts/check.sh`: fixed-seed fault scenarios
//! that must all recover AND reproduce the fault-free trajectory bitwise.
//!
//! Three scenarios, all on a small Landau workload so the release-mode run
//! stays under a couple of seconds:
//!
//! * **drop+corrupt** — 4 ranks over a link dropping 25% and corrupting
//!   15% of frames; the ack/retry transport must hide it completely.
//! * **kill@2** / **kill@4** — the last rank is killed mid-step on 2- and
//!   4-rank runs; survivors must detect, shrink, roll back to the buddy
//!   checkpoint, and finish with ρ bit-identical per logical rank.
//!
//! Any mismatch or failed recovery exits nonzero, so check.sh can gate on
//! it. Seeds are fixed: the scenarios are deterministic, not sampled.

use minimpi::{Comm, FaultPlan, World};
use pic_core::resilience::{run_resilient_distributed, DistConfig};
use pic_core::sim::{PicConfig, Simulation};
use pic_core::PicError;
use std::collections::BTreeMap;
use std::time::Duration;

const N: usize = 2_000;
const STEPS: u64 = 6;
// Lands in step 3's reduction, one step past the committed step-2
// checkpoint (init 2 ops, checkpointed step 4 ops, plain step 2 ops).
const KILL_OP: u64 = 13;

fn workload(id: usize, ranks: usize) -> PicConfig {
    let per = N / ranks;
    let mut cfg = PicConfig::landau_table1(N);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 0;
    cfg.keep_range = Some((id * per, (id + 1) * per));
    cfg
}

/// ρ per logical rank from a distributed run, merged across ranks.
type RhoById = BTreeMap<usize, Vec<f64>>;

fn merge(per_rank: Vec<RhoById>) -> RhoById {
    let mut all = RhoById::new();
    for m in per_rank {
        for (id, rho) in m {
            assert!(
                all.insert(id, rho).is_none(),
                "logical rank {id} hosted twice"
            );
        }
    }
    all
}

fn resilient_body(ranks: usize) -> impl Fn(&mut Comm) -> (bool, usize, RhoById) + Send + Sync {
    move |comm| {
        let make_cfg = move |id: usize| workload(id, ranks);
        let rcfg = DistConfig {
            checkpoint_every: 2,
            max_recoveries: 2,
            heartbeat_timeout: None,
            recv_deadline: Some(Duration::from_secs(10)),
        };
        let out = run_resilient_distributed(comm, &make_cfg, STEPS, &rcfg).unwrap();
        let rhos = out
            .sims
            .iter()
            .map(|(id, sim)| (*id, sim.rho().to_vec()))
            .collect();
        (out.survivor, out.recoveries, rhos)
    }
}

fn check_kill(ranks: usize) -> Result<(), PicError> {
    let clean = merge(
        World::run(ranks, resilient_body(ranks))
            .into_iter()
            .map(|(_, _, r)| r)
            .collect(),
    );
    let plan = FaultPlan::new(0xD1E).kill_rank(ranks - 1, KILL_OP);
    let outcomes = World::run_with_faults(ranks, plan, resilient_body(ranks));
    let mut recovered = false;
    for (rank, (survivor, recoveries, _)) in outcomes.iter().enumerate() {
        if rank == ranks - 1 && *survivor {
            return Err(PicError::Diverged(format!(
                "kill@{ranks}: rank {rank} should have died"
            )));
        }
        recovered |= *survivor && *recoveries > 0;
    }
    if !recovered {
        return Err(PicError::Diverged(format!(
            "kill@{ranks}: no survivor reported a recovery"
        )));
    }
    let faulty = merge(outcomes.into_iter().map(|(_, _, r)| r).collect());
    for (id, rho) in &clean {
        if faulty.get(id) != Some(rho) {
            return Err(PicError::Diverged(format!(
                "kill@{ranks}: logical rank {id} diverged from the fault-free run"
            )));
        }
    }
    println!(
        "  kill@{ranks}: recovered, {} logical ranks bit-exact",
        clean.len()
    );
    Ok(())
}

fn lossy_body(ranks: usize) -> impl Fn(&mut Comm) -> Vec<f64> + Send + Sync {
    move |comm| {
        let r = comm.rank();
        let mut sim = Simulation::new_with_reduce(workload(r, ranks), |rho| {
            comm.try_allreduce_sum_tree(rho, 1 << 40).unwrap()
        })
        .unwrap();
        for step in 0..STEPS {
            sim.step_with_reduce(|rho| {
                comm.try_allreduce_sum_tree(rho, step * 10_000)
                    .expect("recoverable fault rates must not surface errors")
            });
        }
        sim.rho().to_vec()
    }
}

fn check_drop_corrupt() -> Result<(), PicError> {
    let ranks = 4;
    let clean = World::run(ranks, lossy_body(ranks));
    let plan = FaultPlan::new(0xF417)
        .drop_messages(0.25)
        .corrupt_messages(0.15);
    let faulty = World::run_with_faults(ranks, plan, lossy_body(ranks));
    for rank in 0..ranks {
        if faulty[rank] != clean[rank] {
            return Err(PicError::Diverged(format!(
                "drop+corrupt: rank {rank} diverged from the fault-free run"
            )));
        }
    }
    println!("  drop+corrupt: {ranks} ranks bit-exact through lossy transport");
    Ok(())
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    println!("fault matrix ({N} particles, {STEPS} steps):");
    check_drop_corrupt()?;
    check_kill(2)?;
    check_kill(4)?;
    println!("fault matrix: all scenarios recovered bit-exact");
    Ok(())
}
