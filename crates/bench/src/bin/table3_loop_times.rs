//! Table III — wall-clock seconds spent in each particle loop per ordering,
//! including the 2-D standard layout and the Hilbert row.
//!
//! Usage: table3_loop_times [--particles N] [--grid G] [--iters I]
//!                          [--l4d-sweep]   # also sweep the L4D SIZE knob
//!
//! Expected shape (paper Table III): Morton/L4D fastest in accumulate
//! (redundant layout + locality), a few extra seconds in update-positions
//! (the layout `encode` per particle), and Hilbert catastrophically slow in
//! update-positions (no cheap bijection) — which is why the paper discards
//! it despite its good cache behaviour.

use pic_bench::cli::Args;
use pic_bench::table::{secs, Table};
use pic_bench::workloads::{self, run_fresh};
use pic_core::sim::{FieldLayout, PhaseTimes};
use pic_core::PicError;
use sfc::Ordering;

fn run_case(
    label: &str,
    cfg: pic_core::sim::PicConfig,
    iters: usize,
    t: &mut Table,
) -> Result<PhaseTimes, PicError> {
    eprintln!("running {label} ...");
    let sim = run_fresh(cfg, iters)?;
    let ph = sim.timers();
    t.row(&[
        label.to_string(),
        secs(ph.update_v),
        secs(ph.update_x),
        secs(ph.accumulate),
        secs(ph.total()),
    ]);
    Ok(ph)
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles = args.get("particles", workloads::DEFAULT_PARTICLES);
    let grid = args.get("grid", workloads::DEFAULT_GRID);
    let iters = args.get("iters", workloads::DEFAULT_ITERS);

    println!("# Table III — time spent in the different loops (seconds)");
    println!("# particles={particles} grid={grid} iters={iters} sort-every=20");

    let mut t = Table::new(&["Layout", "Update v", "Update x", "Accumulate", "Total"]);

    // 2-D standard: standard field arrays, row-major.
    let mut cfg = workloads::table1(particles, grid, Ordering::RowMajor);
    cfg.field_layout = FieldLayout::Standard;
    cfg.hoisted = false; // standard layout has no pre-scaled redundant copy
    run_case("2d standard", cfg, iters, &mut t)?;

    // Redundant layout under each ordering.
    for ordering in Ordering::paper_set() {
        let cfg = workloads::table1(particles, grid, ordering);
        run_case(&ordering.to_string(), cfg, iters, &mut t)?;
    }
    t.print();

    if args.has("l4d-sweep") {
        println!("\n# L4D SIZE sweep (paper: SIZE=8 best on Haswell)");
        let mut t = Table::new(&["SIZE", "Update v", "Update x", "Accumulate", "Total"]);
        for size in [4usize, 8, 16, 32] {
            let cfg = workloads::table1(particles, grid, Ordering::L4D(size));
            run_case(&format!("L4D SIZE={size}"), cfg, iters, &mut t)?;
        }
        t.print();
    }
    Ok(())
}
