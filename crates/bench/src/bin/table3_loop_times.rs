//! Table III — wall-clock seconds spent in each particle loop per ordering,
//! including the 2-D standard layout and the Hilbert row.
//!
//! Usage: table3_loop_times [--particles N] [--grid G] [--iters I]
//!                          [--l4d-sweep]   # also sweep the L4D SIZE knob
//!
//! Expected shape (paper Table III): Morton/L4D fastest in accumulate
//! (redundant layout + locality), a few extra seconds in update-positions
//! (the layout `encode` per particle), and Hilbert catastrophically slow in
//! update-positions (no cheap bijection) — which is why the paper discards
//! it despite its good cache behaviour.

use pic_bench::cli::Args;
use pic_bench::report::{results_path, write_json_file, Json};
use pic_bench::table::{secs, Table};
use pic_bench::workloads::{self, run_fresh};
use pic_core::sim::{FieldLayout, PhaseTimes};
use pic_core::PicError;
use sfc::Ordering;

fn run_case(
    label: &str,
    cfg: pic_core::sim::PicConfig,
    iters: usize,
    t: &mut Table,
) -> Result<PhaseTimes, PicError> {
    eprintln!("running {label} ...");
    let sim = run_fresh(cfg, iters)?;
    let ph = sim.timers();
    t.row(&[
        label.to_string(),
        secs(ph.update_v),
        secs(ph.update_x),
        secs(ph.accumulate),
        secs(ph.total()),
    ]);
    Ok(ph)
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles = args.get("particles", workloads::DEFAULT_PARTICLES);
    let grid = args.get("grid", workloads::DEFAULT_GRID);
    let iters = args.get("iters", workloads::DEFAULT_ITERS);

    println!("# Table III — time spent in the different loops (seconds)");
    println!("# particles={particles} grid={grid} iters={iters} sort-every=20");

    let mut t = Table::new(&["Layout", "Update v", "Update x", "Accumulate", "Total"]);
    let mut rows = Vec::new();
    let json_row = |label: &str, ph: &PhaseTimes| {
        let ns = |s: f64| Json::Num(pic_bench::ns_per_particle(s, particles, iters));
        Json::obj([
            ("layout", Json::s(label)),
            ("update_v_s", Json::Num(ph.update_v)),
            ("update_x_s", Json::Num(ph.update_x)),
            ("accumulate_s", Json::Num(ph.accumulate)),
            ("total_s", Json::Num(ph.total())),
            ("update_v_ns_per_particle", ns(ph.update_v)),
            ("update_x_ns_per_particle", ns(ph.update_x)),
            ("accumulate_ns_per_particle", ns(ph.accumulate)),
        ])
    };

    // 2-D standard: standard field arrays, row-major.
    let mut cfg = workloads::table1(particles, grid, Ordering::RowMajor);
    cfg.field_layout = FieldLayout::Standard;
    cfg.hoisted = false; // standard layout has no pre-scaled redundant copy
    let ph = run_case("2d standard", cfg, iters, &mut t)?;
    rows.push(json_row("2d standard", &ph));

    // Redundant layout under each ordering.
    for ordering in Ordering::paper_set() {
        let cfg = workloads::table1(particles, grid, ordering);
        let ph = run_case(&ordering.to_string(), cfg, iters, &mut t)?;
        rows.push(json_row(&ordering.to_string(), &ph));
    }
    t.print();

    let doc = Json::obj([
        ("bench", Json::s("table3_loop_times")),
        ("particles", Json::Int(particles as i64)),
        ("grid", Json::Int(grid as i64)),
        ("iters", Json::Int(iters as i64)),
        ("results", Json::Arr(rows)),
    ]);
    let path = results_path("BENCH_table3.json");
    write_json_file(&path, &doc).map_err(|e| PicError::Io(format!("{}: {e}", path.display())))?;
    println!("# wrote {}", path.display());

    if args.has("l4d-sweep") {
        println!("\n# L4D SIZE sweep (paper: SIZE=8 best on Haswell)");
        let mut t = Table::new(&["SIZE", "Update v", "Update x", "Accumulate", "Total"]);
        for size in [4usize, 8, 16, 32] {
            let cfg = workloads::table1(particles, grid, Ordering::L4D(size));
            run_case(&format!("L4D SIZE={size}"), cfg, iters, &mut t)?;
        }
        t.print();
    }
    Ok(())
}
