//! Replication vs spatial decomposition: per-rank communication volume and
//! wall time at 2/4/8 ranks, weak and strong scaling.
//!
//! The replicated baseline is the paper's hybrid model — every rank holds
//! the full grid and allreduces ρ each step (tree algorithm, so the volume
//! is actually counted; the flat shared-memory path moves no messages).
//! The decomposed run shards the grid with `decomp::DecomposedSimulation`:
//! halo exchange + gather/solve/scatter + migration, all point-to-point.
//!
//! Emits `results/BENCH_scaling.json` and gates on the headline claim of
//! the decomposition: at 4+ ranks the *average per-rank* volume of the
//! decomposed run must undercut the replicated allreduce. Exits nonzero if
//! any configuration violates that, so `scripts/check.sh` can gate on it.
//!
//! Byte counts come from `minimpi`'s transport accounting (logical payload
//! f64s through `send_ft`/`stash_take`, sent + received, retransmits not
//! double-counted); wall times are whole-`World` and include thread spawn,
//! so treat them as a scaling snapshot, not a microbenchmark.

use decomp::{DecompConfig, DecomposedSimulation, SolverMode};
use minimpi::World;
use pic_bench::report::{results_path, write_json_file, Json};
use pic_bench::table::Table;
use pic_core::sim::{PicConfig, Simulation};
use pic_core::PicError;
use sfc::Ordering;
use std::time::Instant;

const STEPS: usize = 8;
const GRID: usize = 32;
const WEAK_PER_RANK: usize = 4_000;
const STRONG_TOTAL: usize = 16_000;
const RANK_COUNTS: [usize; 3] = [2, 4, 8];
const REPL_TAG: u64 = 1 << 40;

fn base_cfg(n: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n);
    cfg.grid_nx = GRID;
    cfg.grid_ny = GRID;
    cfg.ordering = Ordering::Morton;
    cfg.sort_period = 2;
    cfg
}

/// One (mode, ranks) measurement.
struct Sample {
    mode: &'static str,
    ranks: usize,
    n_total: usize,
    secs: f64,
    /// Per-rank logical bytes (sent + received) over all steps, init
    /// excluded.
    bytes_per_rank: Vec<u64>,
    /// Decomposition only: per-phase totals summed over ranks.
    phases: Option<[u64; 4]>,
}

impl Sample {
    fn avg_bytes_per_rank_step(&self) -> f64 {
        let total: u64 = self.bytes_per_rank.iter().sum();
        total as f64 / self.ranks as f64 / STEPS as f64
    }

    fn max_bytes_per_rank_step(&self) -> f64 {
        *self.bytes_per_rank.iter().max().unwrap() as f64 / STEPS as f64
    }
}

fn run_replicated(ranks: usize, n_total: usize) -> Sample {
    let t = Instant::now();
    let bytes = World::run(ranks, move |comm| {
        let id = comm.rank();
        let per = n_total / ranks;
        let mut cfg = base_cfg(n_total);
        cfg.keep_range = Some((id * per, (id + 1) * per));
        let mut sim = Simulation::new_with_reduce(cfg, |rho| {
            comm.try_allreduce_sum_tree(rho, REPL_TAG).unwrap()
        })
        .unwrap();
        comm.reset_data_volume();
        for step in 0..STEPS as u64 {
            sim.step_with_reduce(|rho| {
                comm.try_allreduce_sum_tree(rho, REPL_TAG + 1 + step)
                    .unwrap()
            });
        }
        comm.bytes_sent() + comm.bytes_received()
    });
    Sample {
        mode: "replicated",
        ranks,
        n_total,
        secs: t.elapsed().as_secs_f64(),
        bytes_per_rank: bytes,
        phases: None,
    }
}

fn run_decomposed(ranks: usize, n_total: usize) -> Sample {
    let t = Instant::now();
    let out = World::run(ranks, move |comm| {
        // Pin the root-gather solver: this gate is about the halo model's
        // boundary-sized traffic beating replication's allreduce. The slab
        // solver deliberately spends grid-sized all-to-all volume to shrink
        // per-rank memory and compute — that trade is gated in bench_solver.
        let dcfg = DecompConfig {
            solver: SolverMode::RootGather,
            ..DecompConfig::default()
        };
        let mut dsim = DecomposedSimulation::new(base_cfg(n_total), dcfg, comm).unwrap();
        dsim.run(STEPS, comm).unwrap();
        let s = dsim.stats();
        (
            s.total_bytes(),
            [
                s.halo_bytes,
                s.gather_bytes,
                s.scatter_bytes,
                s.migrate_bytes,
            ],
        )
    });
    let mut phases = [0u64; 4];
    for (_, p) in &out {
        for (acc, v) in phases.iter_mut().zip(p) {
            *acc += v;
        }
    }
    Sample {
        mode: "decomposed",
        ranks,
        n_total,
        secs: t.elapsed().as_secs_f64(),
        bytes_per_rank: out.into_iter().map(|(b, _)| b).collect(),
        phases: Some(phases),
    }
}

fn sample_json(s: &Sample) -> Json {
    let mut fields = vec![
        ("mode".to_string(), Json::s(s.mode)),
        ("ranks".to_string(), Json::Int(s.ranks as i64)),
        ("particles".to_string(), Json::Int(s.n_total as i64)),
        ("secs".to_string(), Json::Num(s.secs)),
        (
            "avg_bytes_per_rank_step".to_string(),
            Json::Num(s.avg_bytes_per_rank_step()),
        ),
        (
            "max_bytes_per_rank_step".to_string(),
            Json::Num(s.max_bytes_per_rank_step()),
        ),
    ];
    if let Some([halo, gather, scatter, migrate]) = s.phases {
        fields.push((
            "phase_bytes_total".to_string(),
            Json::Obj(vec![
                ("halo".to_string(), Json::Int(halo as i64)),
                ("gather".to_string(), Json::Int(gather as i64)),
                ("scatter".to_string(), Json::Int(scatter as i64)),
                ("migrate".to_string(), Json::Int(migrate as i64)),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// Run one scaling regime, returning (samples, gate violations).
fn regime(name: &str, n_of_ranks: impl Fn(usize) -> usize) -> (Vec<Sample>, Vec<String>) {
    let mut samples = Vec::new();
    let mut violations = Vec::new();
    let mut table = Table::new(&[
        "ranks",
        "mode",
        "particles",
        "secs",
        "B/rank/step avg",
        "B/rank/step max",
    ]);
    for &ranks in &RANK_COUNTS {
        let n = n_of_ranks(ranks);
        let repl = run_replicated(ranks, n);
        let dec = run_decomposed(ranks, n);
        for s in [&repl, &dec] {
            table.row(&[
                s.ranks.to_string(),
                s.mode.to_string(),
                s.n_total.to_string(),
                format!("{:.3}", s.secs),
                format!("{:.0}", s.avg_bytes_per_rank_step()),
                format!("{:.0}", s.max_bytes_per_rank_step()),
            ]);
        }
        if ranks >= 4 && dec.avg_bytes_per_rank_step() >= repl.avg_bytes_per_rank_step() {
            violations.push(format!(
                "{name} @ {ranks} ranks: decomposed {:.0} B/rank/step >= replicated {:.0}",
                dec.avg_bytes_per_rank_step(),
                repl.avg_bytes_per_rank_step()
            ));
        }
        samples.push(repl);
        samples.push(dec);
    }
    println!("\n{name} scaling ({GRID}x{GRID} grid, {STEPS} steps):");
    print!("{}", table.render());
    (samples, violations)
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let (weak, v1) = regime("weak", |ranks| WEAK_PER_RANK * ranks);
    let (strong, v2) = regime("strong", |_| STRONG_TOTAL);

    let json = Json::obj([
        ("grid", Json::Arr(vec![Json::Int(GRID as i64); 2])),
        ("steps", Json::Int(STEPS as i64)),
        ("weak", Json::Arr(weak.iter().map(sample_json).collect())),
        (
            "strong",
            Json::Arr(strong.iter().map(sample_json).collect()),
        ),
        (
            "gate",
            Json::s("decomposed avg B/rank/step < replicated at 4+ ranks"),
        ),
    ]);
    let path = results_path("BENCH_scaling.json");
    write_json_file(&path, &json).map_err(|e| PicError::Io(format!("{}: {e}", path.display())))?;
    println!("\nwrote {}", path.display());

    let violations: Vec<String> = v1.into_iter().chain(v2).collect();
    if !violations.is_empty() {
        return Err(PicError::Diverged(format!(
            "comm-volume gate failed: {}",
            violations.join("; ")
        )));
    }
    println!("gate passed: decomposition undercuts replication volume at 4+ ranks");
    Ok(())
}
