//! Table IV — total execution time along the optimization ladder:
//! each rung adds one of the paper's optimizations and reports the gain
//! over the previous rung plus the accumulated gain over the baseline.
//!
//! Usage: table4_opt_ladder [--particles N] [--grid G] [--iters I]
//!
//! Expected shape (paper): baseline → fully optimized ≈ 42 % faster, with
//! the largest single contributions from loop splitting and SoA.

use pic_bench::cli::Args;
use pic_bench::report::{results_path, write_json_file, Json};
use pic_bench::table::{secs, Table};
use pic_bench::workloads::{self, run_fresh};
use pic_core::PicError;

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles = args.get("particles", workloads::DEFAULT_PARTICLES);
    let grid = args.get("grid", workloads::DEFAULT_GRID);
    let iters = args.get("iters", workloads::DEFAULT_ITERS);

    println!("# Table IV — total execution time, gains and accumulated gains");
    println!("# particles={particles} grid={grid} iters={iters}");

    let ladder = workloads::table4_ladder(particles, grid);
    let mut t = Table::new(&["Configuration", "Time(s)", "Gain(%)", "Acc. gain(%)"]);
    let mut rows = Vec::new();
    let mut baseline = None;
    let mut prev = None;
    for (label, cfg) in ladder {
        eprintln!("running {label} ...");
        let sim = run_fresh(cfg, iters)?;
        // Wall time of the particle phases + sort (the paper's "total"
        // excludes nothing, but the Poisson solve is identical across rungs;
        // include everything for the same reason).
        let time = sim.timers().total();
        let base = *baseline.get_or_insert(time);
        let gain = prev.map_or(0.0, |p: f64| 100.0 * (1.0 - time / p));
        let acc = 100.0 * (1.0 - time / base);
        t.row(&[
            label.to_string(),
            secs(time),
            format!("{gain:.1}"),
            format!("{acc:.1}"),
        ]);
        rows.push(Json::obj([
            ("configuration", Json::s(label)),
            ("time_s", Json::Num(time)),
            ("gain_pct", Json::Num(gain)),
            ("acc_gain_pct", Json::Num(acc)),
            (
                "ns_per_particle",
                Json::Num(pic_bench::ns_per_particle(time, particles, iters)),
            ),
        ]));
        prev = Some(time);
    }
    t.print();

    println!("\n# Paper (50 M particles, Haswell, icc): 120.4 s -> 68.8 s, 42.8% accumulated gain");
    // The ladder is never empty, so `prev` was set on every path.
    let mp = pic_bench::mp_per_s(particles, iters, prev.expect("ladder is non-empty"));
    println!("# Final rung throughput: {mp:.1} M particles/s (paper: 65 M/s on Haswell)");

    let doc = Json::obj([
        ("bench", Json::s("table4_opt_ladder")),
        ("particles", Json::Int(particles as i64)),
        ("grid", Json::Int(grid as i64)),
        ("iters", Json::Int(iters as i64)),
        ("results", Json::Arr(rows)),
    ]);
    let path = results_path("BENCH_table4.json");
    write_json_file(&path, &doc).map_err(|e| PicError::Io(format!("{}: {e}", path.display())))?;
    println!("# wrote {}", path.display());
    Ok(())
}
