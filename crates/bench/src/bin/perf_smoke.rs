//! Perf smoke test — the quick gate `scripts/check.sh` runs after the
//! functional suites: time the lane-blocked kernels against their scalar
//! twins on a small population and fail if the lane path has regressed
//! below scalar, then check that the adaptive controller's settled
//! steady-state pick is never worse than the static all-scalar baseline.
//!
//! Usage: perf_smoke [--particles N] [--reps R] [--tolerance PCT]
//!
//! Timing is min-of-reps (the minimum is the least noisy statistic for a
//! hot loop: every disturbance only adds time). The gate allows the lane
//! path to be `--tolerance` percent slower than scalar before failing, so
//! scheduler jitter on a loaded box does not produce false alarms; a real
//! vectorization regression (lanes falling back to scalar codegen) shows
//! up as tens of percent.

use pic_bench::cli::Args;
use pic_bench::harness::black_box;
use pic_core::control::ControllerConfig;
use pic_core::fields::RedundantRho;
use pic_core::grid::Grid2D;
use pic_core::kernels::{accumulate, deposit, position, simd};
use pic_core::particles::{initialize, InitialDistribution, ParticlesSoA};
use pic_core::sim::{DepositPath, KernelPath, PicConfig, Simulation};
use pic_core::sort::sort_out_of_place;
use pic_core::PicError;
use sfc::{CellLayout, RowMajor};
use std::time::Instant;

const SIDE: usize = 128;

fn setup(layout: &dyn CellLayout, n: usize) -> ParticlesSoA {
    let grid = Grid2D::new(SIDE, SIDE, 1.0, 1.0).unwrap();
    let mut p = initialize(&grid, layout, InitialDistribution::Uniform, n, 42);
    for v in p.vx.iter_mut().chain(p.vy.iter_mut()) {
        *v *= 0.5;
    }
    let mut scratch = ParticlesSoA::zeroed(0);
    sort_out_of_place(&mut p, &mut scratch, layout.ncells());
    p
}

/// Min-of-`reps` seconds for one call of `f`.
fn min_time(reps: usize, mut f: impl FnMut()) -> f64 {
    // One untimed call to warm caches and page in the working set.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let n = args.get("particles", 200_000);
    let reps = args.get("reps", 7);
    let tolerance = args.get("tolerance", 10.0_f64); // percent

    let layout = RowMajor::new(SIDE, SIDE).map_err(PicError::Layout)?;
    let base = setup(&layout, n);
    println!("# perf smoke — lane vs scalar kernels, n={n}, min of {reps} reps");

    let mut failed = false;
    let mut gate = |name: &str, scalar_s: f64, lanes_s: f64| {
        let ratio = scalar_s / lanes_s;
        let ok = lanes_s <= scalar_s * (1.0 + tolerance / 100.0);
        println!(
            "{name:<20} scalar {:>8.2} ns/p   lanes {:>8.2} ns/p   speedup {ratio:.2}x   {}",
            scalar_s * 1e9 / n as f64,
            lanes_s * 1e9 / n as f64,
            if ok { "ok" } else { "REGRESSED" },
        );
        failed |= !ok;
    };

    // Update-positions: branchless scalar vs lane-blocked.
    {
        let mut p = base.clone();
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        let scalar = min_time(reps, || {
            position::update_positions_branchless(
                &mut p.icell,
                &mut p.ix,
                &mut p.iy,
                &mut p.dx,
                &mut p.dy,
                &vx,
                &vy,
                SIDE,
                SIDE,
                1.0,
            );
            black_box(p.icell[0]);
        });
        let mut p = base.clone();
        let lanes = min_time(reps, || {
            simd::update_positions_branchless_lanes(
                &mut p.icell,
                &mut p.ix,
                &mut p.iy,
                &mut p.dx,
                &mut p.dy,
                &vx,
                &vy,
                SIDE,
                SIDE,
                1.0,
            );
            black_box(p.icell[0]);
        });
        gate("update_positions", scalar, lanes);
    }

    // Deposition: redundant scalar vs lane-blocked.
    {
        let mut acc = RedundantRho::new(&layout);
        let scalar = min_time(reps, || {
            accumulate::accumulate_redundant(&base.icell, &base.dx, &base.dy, &mut acc.rho4, 1.0);
            black_box(acc.rho4[0][0]);
        });
        let lanes = min_time(reps, || {
            simd::accumulate_redundant_lanes(&base.icell, &base.dx, &base.dy, &mut acc.rho4, 1.0);
            black_box(acc.rho4[0][0]);
        });
        gate("accumulate", scalar, lanes);

        // Vectorized deposition: the best reassociated path must beat the
        // scalar exact kernel (the whole point of DepositPath — anything
        // else means the lane-reduction/run-walk codegen regressed).
        let lane_reduce = min_time(reps, || {
            deposit::accumulate_lane_reduce(&base.icell, &base.dx, &base.dy, &mut acc.rho4, 1.0);
            black_box(acc.rho4[0][0]);
        });
        let sorted_block = min_time(reps, || {
            deposit::accumulate_sorted_block(&base.icell, &base.dx, &base.dy, &mut acc.rho4, 1.0);
            black_box(acc.rho4[0][0]);
        });
        gate("deposit_vectorized", scalar, lane_reduce.min(sorted_block));
    }

    // Adaptive controller: after the calibration bootstrap settles, the
    // hot path the controller picked must never run worse than the static
    // all-scalar baseline — a wrong steady-state pick (stale probe, bad
    // deposit hysteresis) shows up here as a regression.
    {
        let settle = 20_usize;
        let window = 25_usize;
        let step_window = |sim: &mut Simulation, reps: usize| {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t = Instant::now();
                for _ in 0..window {
                    sim.step();
                }
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };
        let mut cfg = PicConfig::landau_table1(n);
        cfg.kernel_path = KernelPath::Scalar;
        cfg.deposit_path = DepositPath::Exact;
        let mut baseline = Simulation::new(cfg.clone())?;
        cfg.controller = Some(ControllerConfig::default());
        let mut adaptive = Simulation::new(cfg)?;
        for _ in 0..settle {
            baseline.step();
            adaptive.step();
        }
        let scalar = step_window(&mut baseline, reps);
        let picked = step_window(&mut adaptive, reps);
        gate("adaptive_pick", scalar, picked);
    }

    if failed {
        return Err(PicError::Diverged(format!(
            "lane-blocked kernel slower than scalar beyond {tolerance}% tolerance"
        )));
    }
    println!("# perf smoke passed");
    Ok(())
}
