//! Figures 5 & 6 — L2 and L3 cache misses per iteration over 100 iterations,
//! for the four cell orderings.
//!
//! For each ordering, a real simulation runs the Table I test case while the
//! instrumented trace kernels replay the exact address streams of the
//! update-velocities and accumulate loops through the cache simulator. The
//! expected shape (paper Figs. 5–6): misses drop steeply right after each
//! sort (every 20 iterations) and creep back up as particles randomize —
//! much more slowly for L4D/Morton/Hilbert than for row-major.
//!
//! Usage:
//!   fig5_fig6_cache_timeseries [--particles N] [--grid G] [--iters I]
//!                              [--haswell]       # true Haswell geometry
//!
//! Scaling note: the default run uses ~300 k particles instead of the
//! paper's 50 M, so the L3 is scaled to 2 MiB to preserve the paper's size
//! relations (redundant arrays ≫ L2, fit in L3, particle stream ≫ L3);
//! `--haswell` selects the true 25 MiB L3 for paper-scale runs.

use cachesim::{CacheConfig, Hierarchy, HierarchyConfig};
use pic_bench::cli::Args;
use pic_bench::workloads;
use pic_core::sim::Simulation;
use pic_core::trace::{trace_accumulate, trace_update_velocities, MemoryMap};
use pic_core::PicError;
use sfc::Ordering;

fn hierarchy(haswell: bool) -> Hierarchy {
    if haswell {
        Hierarchy::new(HierarchyConfig::haswell())
    } else {
        Hierarchy::new(HierarchyConfig {
            levels: vec![
                CacheConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    prefetch: true,
                },
                CacheConfig {
                    size_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    prefetch: true,
                },
                CacheConfig {
                    size_bytes: 2 * 1024 * 1024,
                    ways: 16,
                    line_bytes: 64,
                    prefetch: true,
                },
            ],
        })
    }
}

/// Per-iteration (L1, L2, L3) miss counts for one ordering.
fn run_ordering(
    ordering: Ordering,
    particles: usize,
    grid: usize,
    iters: usize,
    haswell: bool,
) -> Result<Vec<[u64; 3]>, PicError> {
    let cfg = workloads::table1(particles, grid, ordering);
    let mut sim = Simulation::new(cfg)?;
    let ncells = grid * grid * 2; // covers L4D padding
    let map = MemoryMap::contiguous(0, particles, ncells);
    let mut h = hierarchy(haswell);
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        let snap = h.stats().clone();
        // Update-velocities reads the pre-push state…
        trace_update_velocities(sim.particles(), &map, &mut h);
        sim.step();
        // …and accumulate deposits at the post-push state.
        trace_accumulate(sim.particles(), &map, &mut h);
        let d = h.stats().delta(&snap);
        out.push([
            d.level(0).misses(),
            d.level(1).misses(),
            d.level(2).misses(),
        ]);
    }
    Ok(out)
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles = args.get("particles", 300_000usize);
    let grid = args.get("grid", 128usize);
    let iters = args.get("iters", 100usize);
    let haswell = args.has("haswell");

    println!("# Fig. 5 / Fig. 6 — cache misses per iteration (update-velocities + accumulate)");
    println!("# particles={particles} grid={grid}x{grid} iters={iters} sort-every=20");
    println!(
        "# geometry: {}",
        if haswell {
            "Haswell (32K/256K/25M)"
        } else {
            "scaled (32K/256K/2M; see header comment)"
        }
    );

    let orderings = Ordering::paper_set();
    let series: Vec<Vec<[u64; 3]>> = orderings
        .iter()
        .map(|&o| {
            eprintln!("running {o} ...");
            run_ordering(o, particles, grid, iters, haswell)
        })
        .collect::<Result<_, _>>()?;

    for (level, name) in [(1usize, "L2 (Fig. 5)"), (2usize, "L3 (Fig. 6)")] {
        println!("\n## {name} misses per iteration");
        print!("{:>4}", "iter");
        for o in &orderings {
            print!("  {:>12}", o.to_string());
        }
        println!();
        for it in 0..iters {
            print!("{it:>4}");
            for s in &series {
                print!("  {:>12}", s[it][level]);
            }
            println!();
        }
    }

    // Shape summary: the non-canonical layouts should average fewer L2
    // misses than row-major (paper: −36 %).
    println!("\n## Average misses per iteration");
    print!("{:>8}", "level");
    for o in &orderings {
        print!("  {:>12}", o.to_string());
    }
    println!();
    for (level, name) in [(0, "L1"), (1, "L2"), (2, "L3")] {
        print!("{name:>8}");
        for s in &series {
            let avg: f64 = s.iter().map(|m| m[level] as f64).sum::<f64>() / iters as f64;
            print!("  {avg:>12.0}");
        }
        println!();
    }
    Ok(())
}
