//! Table VI — strong scaling over threads on one socket (pure OpenMP in the
//! paper, pure threads here): million particles advanced per second at
//! 1/2/4/8 threads, against the ideal linear scaling.
//!
//! Usage: table6_strong_scaling_threads [--particles N] [--grid G] [--iters I]
//!                                      [--max-threads T]
//!
//! Expected shape (paper Table VI): near-ideal to 4 threads, sub-linear at
//! 8 — a PIC step is memory-bound and the socket has 4 memory channels.

use pic_bench::cli::Args;
use pic_bench::mp_per_s;
use pic_bench::table::Table;
use pic_bench::workloads::{self, run_fresh};
use pic_core::PicError;
use sfc::Ordering;
use std::time::Instant;

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles = args.get("particles", workloads::DEFAULT_PARTICLES);
    let grid = args.get("grid", workloads::DEFAULT_GRID);
    let iters = args.get("iters", 50usize);
    let max_threads = args.get("max-threads", 8usize);

    println!("# Table VI — strong scaling over threads (million particles/s)");
    println!("# particles={particles} grid={grid} iters={iters} sort-every=50");

    let mut t = Table::new(&["Threads", "Mp/s", "Mp/s ideal", "Efficiency"]);
    let mut base = None;
    let mut threads = 1usize;
    while threads <= max_threads {
        eprintln!("running {threads} thread(s) ...");
        let mut cfg = workloads::table1(particles, grid, Ordering::Morton);
        cfg.threads = threads;
        cfg.sort_period = 50;
        let wall = Instant::now();
        let _sim = run_fresh(cfg, iters)?;
        let elapsed = wall.elapsed().as_secs_f64();
        let mps = mp_per_s(particles, iters, elapsed);
        let b = *base.get_or_insert(mps);
        let ideal = b * threads as f64;
        t.row(&[
            threads.to_string(),
            format!("{mps:.1}"),
            format!("{ideal:.1}"),
            format!("{:.0}%", 100.0 * mps / ideal),
        ]);
        threads *= 2;
    }
    t.print();
    println!("\n# Paper (Sandy Bridge socket): 45.8 / 89.9 / 170 / 266 Mp/s at 1/2/4/8 cores");
    println!("# (ideal 45.8 / 91.6 / 183 / 366 — bounded by 4 memory channels)");
    Ok(())
}
