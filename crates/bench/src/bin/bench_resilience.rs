//! Resilience-overhead benchmark: what do heartbeats + coordinated buddy
//! checkpointing cost a fault-free run?
//!
//! Two multi-rank runs of the Table-3-style workload (Landau damping,
//! lane-blocked kernels), identical logical decomposition:
//!
//! * **baseline** — the bare hybrid loop: `step_with_reduce` with the tree
//!   allreduce on ρ, no detector, no checkpoints;
//! * **resilient** — `run_resilient_distributed` with the heartbeat
//!   detector armed and a buddy checkpoint every `--ckpt-every` steps.
//!
//! Each of `--reps` reps times the two variants back-to-back; the median
//! paired ratio lands in `results/BENCH_resilience.json`. The acceptance
//! target is < 5% on this workload; the binary reports, it does not gate
//! (perf_smoke gates).
//!
//! Usage: bench_resilience [--particles N] [--steps S] [--ranks R]
//!                         [--reps K] [--ckpt-every C]

use minimpi::World;
use pic_bench::cli::Args;
use pic_bench::report::{results_path, write_json_file, Json};
use pic_core::resilience::{run_resilient_distributed, DistConfig};
use pic_core::sim::{PicConfig, Simulation};
use pic_core::PicError;
use std::time::{Duration, Instant};

fn workload(n: usize, id: usize, ranks: usize) -> PicConfig {
    let per = n / ranks;
    let mut cfg = PicConfig::landau_table1(n);
    cfg.grid_nx = 64;
    cfg.grid_ny = 64;
    cfg.keep_range = Some((id * per, (id + 1) * per));
    cfg
}

fn baseline_secs(n: usize, steps: u64, ranks: usize) -> f64 {
    let t = Instant::now();
    World::run(ranks, move |comm| {
        let r = comm.rank();
        let mut sim = Simulation::new_with_reduce(workload(n, r, ranks), |rho| {
            comm.try_allreduce_sum_tree(rho, 1 << 40).unwrap()
        })
        .unwrap();
        for step in 0..steps {
            sim.step_with_reduce(|rho| comm.try_allreduce_sum_tree(rho, step * 10_000).unwrap());
        }
        sim.rho()[0]
    });
    t.elapsed().as_secs_f64()
}

fn resilient_secs(n: usize, steps: u64, ranks: usize, ckpt_every: u64) -> (f64, u64) {
    let t = Instant::now();
    let out = World::run(ranks, move |comm| {
        let make_cfg = move |id: usize| workload(n, id, ranks);
        let rcfg = DistConfig {
            checkpoint_every: ckpt_every,
            max_recoveries: 1,
            heartbeat_timeout: Some(Duration::from_secs(2)),
            recv_deadline: Some(Duration::from_secs(30)),
        };
        let out = run_resilient_distributed(comm, &make_cfg, steps, &rcfg).unwrap();
        assert!(
            out.survivor && out.recoveries == 0,
            "fault-free run must not trigger recovery"
        );
        out.checkpoints as u64
    });
    (t.elapsed().as_secs_f64(), out[0])
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let n = args.get("particles", 400_000usize);
    let steps = args.get("steps", 200u64);
    let ranks = args.get("ranks", 4usize);
    let reps = args.get("reps", 5usize);
    let ckpt_every = args.get("ckpt-every", 100u64);

    // Machine load varies between invocations far more than within one, so
    // each rep times the two variants back-to-back and the reported
    // overhead is the median paired ratio — ratio-of-global-minima would
    // compare runs taken under different load, and the min ratio just
    // picks the rep whose baseline drew the short straw.
    let mut pairs = Vec::new();
    let mut checkpoints = 0u64;
    for _ in 0..reps.max(1) {
        let b = baseline_secs(n, steps, ranks);
        let (r, cks) = resilient_secs(n, steps, ranks, ckpt_every);
        pairs.push((r / b, b, r));
        checkpoints = cks;
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (ratio, base, resi) = pairs[pairs.len() / 2];
    let overhead_pct = (ratio - 1.0) * 100.0;
    println!(
        "resilience overhead: baseline {base:.3}s, resilient {resi:.3}s \
         ({overhead_pct:+.2}% for heartbeats + {checkpoints} buddy checkpoints)"
    );

    let json = Json::obj([
        (
            "workload",
            Json::obj([
                ("particles", Json::Int(n as i64)),
                ("steps", Json::Int(steps as i64)),
                ("ranks", Json::Int(ranks as i64)),
                ("grid", Json::s("64x64")),
                ("checkpoint_every", Json::Int(ckpt_every as i64)),
                ("reps", Json::Int(reps as i64)),
            ]),
        ),
        ("baseline_s", Json::Num(base)),
        ("resilient_s", Json::Num(resi)),
        ("overhead_pct", Json::Num(overhead_pct)),
        ("threshold_pct", Json::Num(5.0)),
        ("within_threshold", Json::Bool(overhead_pct < 5.0)),
        ("checkpoints", Json::Int(checkpoints as i64)),
    ]);
    let path = results_path("BENCH_resilience.json");
    write_json_file(&path, &json).map_err(|e| PicError::Io(e.to_string()))?;
    println!("wrote {}", path.display());
    Ok(())
}
