//! Figures 3 & 4 — the layout pictures: the Morton Z-order on an 8×8 grid
//! and the L4D tiling on a 128×128 grid (corners shown), plus the unit-move
//! locality statistics behind the paper's §IV-B cache argument.
//!
//! Usage: fig3_fig4_layouts

use pic_bench::table::Table;
use sfc::locality::{axis_move_stats, Axis};
use sfc::{CellLayout, Hilbert, Morton, RowMajor, L4D};

fn main() {
    println!("# Fig. 3 — Morton layout of an 8 x 8 matrix (iy →, ix ↓)");
    let m = Morton::new(8, 8).unwrap();
    for ix in 0..8 {
        for iy in 0..8 {
            print!("{:>4}", m.encode(ix, iy));
        }
        println!();
    }

    println!("\n# Fig. 4 — L4D layout of a 128 x 128 matrix, SIZE=8 (selected cells)");
    let l = L4D::new(128, 128, 8).unwrap();
    for &(ix, iy) in &[
        (0usize, 0usize),
        (0, 7),
        (1, 0),
        (1, 7),
        (63, 7),
        (64, 7),
        (65, 7),
        (126, 0),
        (127, 7),
        (0, 8),
        (127, 120),
        (127, 127),
    ] {
        println!("  ({ix:>3},{iy:>3}) -> {}", l.encode(ix, iy));
    }

    println!("\n# Unit-move index-delta statistics, 128 x 128 (threshold 8 cells)");
    let layouts: Vec<Box<dyn CellLayout>> = vec![
        Box::new(RowMajor::new(128, 128).unwrap()),
        Box::new(L4D::new(128, 128, 8).unwrap()),
        Box::new(Morton::new(128, 128).unwrap()),
        Box::new(Hilbert::new(128, 128).unwrap()),
    ];
    let mut t = Table::new(&[
        "Layout",
        "x-move unit",
        "x-move near",
        "x mean |d|",
        "y-move unit",
        "y-move near",
        "y mean |d|",
    ]);
    for l in &layouts {
        let x = axis_move_stats(l.as_ref(), Axis::X, 8);
        let y = axis_move_stats(l.as_ref(), Axis::Y, 8);
        t.row(&[
            l.name().to_string(),
            format!("{:.0}%", 100.0 * x.unit_fraction),
            format!("{:.0}%", 100.0 * x.near_fraction),
            format!("{:.1}", x.mean_abs_delta),
            format!("{:.0}%", 100.0 * y.unit_fraction),
            format!("{:.0}%", 100.0 * y.near_fraction),
            format!("{:.1}", y.mean_abs_delta),
        ]);
    }
    t.print();
    println!("\n# Paper §IV-B: row-major is perfect along y but jumps ncy=128 along x;");
    println!("# L4D keeps 7/8 of y-moves unit-stride and every x-move at distance 8.");
}
