//! Figure 9 — strong scaling of the hybrid parallelism: a fixed total
//! problem (paper: 800 M particles, 256×256 grid) spread over more and more
//! nodes, speedup vs the ideal line.
//!
//! Stage 1 measures real `minimpi` runs (total particles fixed, divided
//! among ranks); stage 2 extrapolates with the calibrated LogGP model.
//!
//! Usage: fig9_strong_scaling_nodes [--particles N] [--grid G] [--iters I]
//!                                  [--max-ranks R]
//!
//! Expected shape (paper Fig. 9): near-ideal up to ~16 nodes, then the
//! speedup bends away as the fixed-size allreduce stops shrinking while the
//! per-rank compute does (32 % communication at 64 nodes).

use minimpi::cost::{strong_scaling, CostModel};
use minimpi::World;
use pic_bench::cli::Args;
use pic_bench::table::Table;
use pic_bench::workloads;
use pic_core::sim::Simulation;
use pic_core::PicError;
use sfc::Ordering;
use std::time::Instant;

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let total_particles = args.get("particles", 2_000_000usize);
    let grid = args.get("grid", 256usize);
    let iters = args.get("iters", 10usize);
    let max_ranks = args.get(
        "max-ranks",
        std::thread::available_parallelism().map_or(4, |c| c.get()),
    );

    println!("# Fig. 9 — strong scaling (fixed {total_particles} particles, {grid}x{grid} grid)");

    println!("\n## Measured (minimpi thread ranks)");
    let mut t = Table::new(&["Ranks", "Time (s)", "Speedup", "Ideal", "Comm %"]);
    let grid_bytes = grid * grid * 8;
    let mut base_time = None;
    let mut samples: Vec<(usize, usize, f64)> = Vec::new();
    let mut ranks = 1usize;
    while ranks <= max_ranks {
        eprintln!("measuring {ranks} rank(s) ...");
        let per_rank = (total_particles / ranks).max(1);
        let results = World::run(ranks, |comm| -> Result<(f64, f64), PicError> {
            // The fixed global population, sliced across ranks (§V-A).
            let mut cfg = workloads::table1(per_rank * comm.size(), grid, Ordering::Morton);
            let r = comm.rank();
            cfg.keep_range = Some((r * per_rank, (r + 1) * per_rank));
            let mut sim = Simulation::new_with_reduce(cfg, |rho| comm.allreduce_sum(rho))?;
            let wall = Instant::now();
            for _ in 0..iters {
                sim.step_with_reduce(|rho| comm.allreduce_sum(rho));
            }
            Ok((wall.elapsed().as_secs_f64(), comm.comm_time()))
        });
        let results: Vec<(f64, f64)> = results.into_iter().collect::<Result<_, _>>()?;
        let time = results.iter().map(|r| r.0).sum::<f64>() / ranks as f64;
        let comm = results.iter().map(|r| r.1).sum::<f64>() / ranks as f64;
        let base = *base_time.get_or_insert(time);
        t.row(&[
            ranks.to_string(),
            format!("{time:.2}"),
            format!("{:.2}", base / time),
            format!("{ranks}"),
            format!("{:.1}%", 100.0 * comm / time),
        ]);
        if ranks > 1 {
            samples.push((ranks, grid_bytes, comm / iters as f64));
        }
        ranks *= 2;
    }
    t.print();

    let fitted = CostModel::fit_tree(&samples);
    let model = fitted.unwrap_or_else(CostModel::curie_like);
    println!(
        "\n## Extrapolation to 64 nodes / 1024 cores (alpha={:.2e}s beta={:.2e}s/B, {})",
        model.alpha,
        model.beta,
        if fitted.is_some() {
            "fitted"
        } else {
            "Curie-like constants"
        }
    );
    // Per-step compute of the whole problem on one reference rank.
    let compute_total = {
        let n = (total_particles / max_ranks.max(1)).max(1);
        let cfg = workloads::table1(n, grid, Ordering::Morton);
        let mut sim = Simulation::new(cfg)?;
        let wall = Instant::now();
        sim.run(iters);
        wall.elapsed().as_secs_f64() / iters as f64 * (total_particles as f64 / n as f64)
    };
    // Hybrid: 2 ranks per node (one per socket), 8 threads each.
    let node_counts: Vec<usize> = (0..7).map(|i| 1usize << i).collect(); // 1..64
    let rank_counts: Vec<usize> = node_counts.iter().map(|n| n * 2).collect();
    let pts = strong_scaling(&model, compute_total / 8.0, grid_bytes, &rank_counts);
    let mut t = Table::new(&[
        "Nodes",
        "Cores",
        "Time/step (s)",
        "Speedup",
        "Ideal",
        "Comm %",
    ]);
    let base = pts[0].total();
    for (nodes, p) in node_counts.iter().zip(&pts) {
        t.row(&[
            nodes.to_string(),
            (nodes * 16).to_string(),
            format!("{:.4}", p.total()),
            format!("{:.1}", base / p.total()),
            format!("{:.0}", nodes),
            format!("{:.0}%", p.comm_percent()),
        ]);
    }
    t.print();
    println!("\n# Paper Fig. 9: speedup 64 nodes / 1024 cores well below ideal; comm = 32% of total there.");
    Ok(())
}
