//! Adaptive hot-path controller gate — drifting-plasma scenarios for the
//! online controller in [`pic_core::control`].
//!
//! Two scenarios, both against honest static competitors:
//!
//! * **steady** (Landau damping): disorder develops only through natural
//!   phase mixing, so well-tuned static sort periods are hard to beat —
//!   the controller must finish within `--tolerance` percent (default 5)
//!   of the best member of a static grid over kernel path × deposit path
//!   × sort period (including "never sort").
//! * **drift** (two-stream with injection disorder): after a quiet phase,
//!   a seeded physics-neutral permutation scrambles the particle array on
//!   a cadence no fixed period matches — every static schedule either
//!   sorts at the wrong times or traverses scrambled for most of the
//!   drifting phase. The adaptive run starts from a deliberately poor
//!   configuration (scalar kernel, block deposit) and calibrates out of
//!   it during the quiet phase; the gate then compares the *drifting
//!   phase alone*, where the controller (which watches the disorder
//!   metric, not the clock) must beat the *best* static sort period
//!   outright. Injection time itself is excluded from every measurement —
//!   only simulation stepping is on the clock.
//!
//! Every applied switch is ledgered: the run asserts the controller's
//! decisions all landed in a [`FaultLog`] (as `adapt` records) and in a
//! [`DiagStream`] (as `"adapt"` JSON lines) — an unledgered switch fails
//! the gate.
//!
//! Results land in `results/BENCH_adaptive.json`.
//!
//! Usage: bench_adaptive [--particles N] [--steps N] [--reps R]
//!                       [--tolerance PCT]

use pic_bench::cli::Args;
use pic_bench::report::{results_path, write_json_file, Json};
use pic_bench::table::Table;
use pic_core::control::{ControllerConfig, SwitchEvent};
use pic_core::diag::DiagStream;
use pic_core::faultlog::{FaultKind, FaultLog};
use pic_core::rng::Rng;
use pic_core::sim::{DepositPath, KernelPath, PicConfig, Simulation};
use pic_core::PicError;
use std::time::Instant;

fn gate(cond: bool, what: &str) -> Result<(), PicError> {
    if cond {
        Ok(())
    } else {
        Err(PicError::Diverged(format!("adaptive gate: {what}")))
    }
}

/// Scramble the whole SoA with seeded random swaps: a pure permutation
/// (bit-identical physics up to deposit summation order) that models the
/// cell-order damage of beam injection / filamentation without changing
/// the trajectory ensemble.
fn inject_disorder(sim: &mut Simulation, rng: &mut Rng) {
    let p = sim.particles_mut();
    let n = p.len();
    if n < 2 {
        return;
    }
    for _ in 0..n {
        let i = rng.below(n as u64) as usize;
        let j = rng.below(n as u64) as usize;
        p.icell.swap(i, j);
        p.ix.swap(i, j);
        p.iy.swap(i, j);
        p.dx.swap(i, j);
        p.dy.swap(i, j);
        p.vx.swap(i, j);
        p.vy.swap(i, j);
    }
    sim.note_external_shuffle();
}

/// One timed run: quiet for `steady_steps`, then `drift_steps` with an
/// injection scramble every `shuffle_every` steps. Injection time is kept
/// off the clock. Returns `(quiet-phase, drift-phase)` stepped wall
/// seconds and the controller's drained switch events (empty for static
/// configs).
fn run_once(
    cfg: &PicConfig,
    steady_steps: usize,
    drift_steps: usize,
    shuffle_every: usize,
) -> Result<(f64, f64, Vec<SwitchEvent>), PicError> {
    let mut sim = Simulation::new(cfg.clone())?;
    let mut rng = Rng::seed_from_u64(0xD81F7);
    let t = Instant::now();
    sim.run(steady_steps);
    let quiet = t.elapsed().as_secs_f64();
    let mut drift = 0.0;
    for s in 0..drift_steps {
        if s % shuffle_every.max(1) == 0 {
            inject_disorder(&mut sim, &mut rng);
        }
        let t = Instant::now();
        sim.step();
        drift += t.elapsed().as_secs_f64();
    }
    Ok((quiet, drift, sim.take_hot_path_events()))
}

/// Min-of-reps wall time per phase for a set of configurations, with the
/// reps *interleaved*: every rep times every config back to back, and
/// each config keeps its per-phase minimum across reps. Wall-clock noise
/// on a shared box drifts over minutes, so configs compared against each
/// other must be measured in the same window — timing all reps of one
/// config before the next would fold minutes of thermal drift into the
/// comparison. Returns per-config `(quiet, drift)` minima plus the first
/// rep's switch events per config (empty for static configs).
#[allow(clippy::type_complexity)]
fn timed_set(
    cfgs: &[PicConfig],
    reps: usize,
    steady: usize,
    drift: usize,
    every: usize,
) -> Result<(Vec<(f64, f64)>, Vec<Vec<SwitchEvent>>), PicError> {
    let mut best = vec![(f64::INFINITY, f64::INFINITY); cfgs.len()];
    let mut events: Vec<Option<Vec<SwitchEvent>>> = vec![None; cfgs.len()];
    for rep in 0..reps.max(1) {
        // Rotate the starting position each rep: load ramps and thermal
        // drift within a rep are roughly monotonic, so a fixed order would
        // systematically tax whichever config always runs last.
        let start = rep * cfgs.len() / reps.max(1);
        for k in 0..cfgs.len() {
            let i = (start + k) % cfgs.len();
            let (q, d, ev) = run_once(&cfgs[i], steady, drift, every)?;
            best[i].0 = best[i].0.min(q);
            best[i].1 = best[i].1.min(d);
            events[i].get_or_insert(ev);
        }
    }
    Ok((
        best,
        events.into_iter().map(Option::unwrap_or_default).collect(),
    ))
}

fn static_label(k: KernelPath, d: DepositPath, p: usize) -> String {
    format!(
        "{}/{}/{p}",
        pic_core::control::kernel_name(k),
        pic_core::control::deposit_name(d)
    )
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let n: usize = args.get("particles", 1_600_000);
    let steps: usize = args.get("steps", 200);
    let reps: usize = args.get("reps", 2);
    let tolerance: f64 = args.get("tolerance", 5.0); // percent, steady gate

    let mut table = Table::new(&["Scenario", "Config", "Wall s", "Switches", "Verdict"]);

    // ---------------- steady: Landau damping ----------------
    // 256×256 grid: the per-cell field structures (redundant ρ rows +
    // gather arrays) overflow L2, so a scrambled traversal measurably
    // pays for every random cell access (+70% per step measured at 1.6M
    // particles; on the 128² grid the same structures fit in L2 and the
    // whole sort-period landscape flattens into the noise). Natural phase
    // mixing ramps the cost over tens of steps, so the sort period is a
    // real tradeoff — sorting too often wastes sort time (~1
    // step-equivalent each), too rarely pays the ramp.
    eprintln!("steady (Landau) ...");
    let mut base = PicConfig::landau_table1(n);
    base.grid_nx = 256;
    base.grid_ny = 256;

    let steady_grid: &[(KernelPath, DepositPath, usize)] = &[
        (KernelPath::Scalar, DepositPath::LaneReduce, 32),
        (KernelPath::Lanes, DepositPath::SortedBlock, 32),
        (KernelPath::Lanes, DepositPath::LaneReduce, 0),
        (KernelPath::Lanes, DepositPath::LaneReduce, 8),
        (KernelPath::Lanes, DepositPath::LaneReduce, 16),
        (KernelPath::Lanes, DepositPath::LaneReduce, 32),
        (KernelPath::Lanes, DepositPath::LaneReduce, 64),
    ];
    let mut steady_cfgs: Vec<PicConfig> = steady_grid
        .iter()
        .map(|&(kernel, deposit, period)| {
            let mut cfg = base.clone();
            cfg.kernel_path = kernel;
            cfg.deposit_path = deposit;
            cfg.sort_period = period;
            cfg
        })
        .collect();
    let mut adaptive = base.clone();
    adaptive.controller = Some(ControllerConfig::default());
    steady_cfgs.push(adaptive);
    let (steady_times, mut steady_event_sets) = timed_set(&steady_cfgs, reps, steps, 0, 0)?;
    let steady_events = steady_event_sets.pop().unwrap_or_default();
    let steady_secs = steady_times.last().map(|&(q, _)| q).unwrap_or(f64::NAN);

    let mut best_static = f64::INFINITY;
    let mut best_label = String::new();
    let mut steady_json: Vec<(String, Json)> = Vec::new();
    for (&(kernel, deposit, period), &(secs, _)) in steady_grid.iter().zip(&steady_times) {
        let label = static_label(kernel, deposit, period);
        if secs < best_static {
            best_static = secs;
            best_label = label.clone();
        }
        steady_json.push((label, Json::Num(secs)));
    }
    let steady_ratio = steady_secs / best_static;
    table.row(&[
        "steady".into(),
        format!("best static {best_label}"),
        format!("{best_static:.4}"),
        "-".into(),
        "baseline".into(),
    ]);
    table.row(&[
        "steady".into(),
        "adaptive".into(),
        format!("{steady_secs:.4}"),
        format!("{}", steady_events.len()),
        format!("{:.1}% of best", steady_ratio * 100.0),
    ]);
    // ---------------- drift: two-stream + injection disorder ----------------
    eprintln!("drift (two-stream + injection) ...");
    // Same 256² reasoning as the steady scenario: the injection scramble
    // must actually cost something for reactive sorting to win back.
    let mut drift_base = PicConfig::two_stream(n);
    drift_base.grid_nx = 256;
    drift_base.grid_ny = 256;
    let steady_phase = steps / 3;
    let drift_phase = steps - steady_phase;
    let shuffle_every = 24usize;

    // The gate compares the *drifting phase alone*: the adaptive run
    // starts from a deliberately poor configuration (scalar kernel, block
    // deposit) and spends its quiet phase calibrating out of it, so the
    // quiet phase demonstrates adaptation while the drift phase answers
    // the sort-period question on equal footing — by the time drift sets
    // in, every competitor (static or adaptive) runs lanes/lane_reduce
    // and differs only in *when* it sorts.
    let drift_periods = [0usize, 8, 16, 32, 64];
    let mut drift_cfgs: Vec<PicConfig> = drift_periods
        .iter()
        .map(|&period| {
            let mut cfg = drift_base.clone();
            cfg.sort_period = period;
            cfg
        })
        .collect();
    let mut drift_adaptive = drift_base.clone();
    drift_adaptive.kernel_path = KernelPath::Scalar;
    drift_adaptive.deposit_path = DepositPath::SortedBlock;
    drift_adaptive.controller = Some(ControllerConfig::default());
    drift_cfgs.push(drift_adaptive);
    let (drift_times, mut drift_event_sets) =
        timed_set(&drift_cfgs, reps, steady_phase, drift_phase, shuffle_every)?;
    let drift_events = drift_event_sets.pop().unwrap_or_default();
    let (adaptive_quiet, drift_secs) = *drift_times.last().unwrap_or(&(f64::NAN, f64::NAN));
    let adaptive_total = adaptive_quiet + drift_secs;

    let mut best_drift = f64::INFINITY;
    let mut best_drift_label = String::new();
    let mut best_drift_total = f64::INFINITY;
    let mut drift_json: Vec<(String, Json)> = Vec::new();
    for (&period, &(quiet, drift)) in drift_periods.iter().zip(&drift_times) {
        let label = static_label(drift_base.kernel_path, drift_base.deposit_path, period);
        if drift < best_drift {
            best_drift = drift;
            best_drift_label = label.clone();
            best_drift_total = quiet + drift;
        }
        drift_json.push((
            label,
            Json::obj([
                ("total", Json::Num(quiet + drift)),
                ("drift_phase", Json::Num(drift)),
            ]),
        ));
    }
    table.row(&[
        "drift".into(),
        format!("best static {best_drift_label}"),
        format!("{best_drift:.4}"),
        "-".into(),
        "baseline (drift phase)".into(),
    ]);
    table.row(&[
        "drift".into(),
        "adaptive (from scalar/sorted_block)".into(),
        format!("{drift_secs:.4}"),
        format!("{}", drift_events.len()),
        format!("{:.1}% of best (drift phase)", drift_secs / best_drift * 100.0),
    ]);
    // ---------------- every switch ledgered + streamed ----------------
    let mut log = FaultLog::new();
    let mut stream = DiagStream::new(Vec::new());
    for ev in steady_events.iter().chain(&drift_events) {
        log.record(
            ev.step,
            0,
            0,
            FaultKind::Adapt,
            format!("{} {} -> {}", ev.what, ev.from, ev.to),
        );
        stream.record_adapt(None, ev);
    }
    stream.commit().map_err(|e| PicError::Config(e.to_string()))?;
    let total_switches = steady_events.len() + drift_events.len();
    gate(
        log.count(FaultKind::Adapt) == total_switches,
        "ledger lost adapt records",
    )?;
    gate(
        stream.committed_records() == total_switches as u64,
        "diag stream lost adapt records",
    )?;
    let stream_bytes = String::from_utf8(stream.into_inner()).unwrap_or_default();
    gate(
        stream_bytes.lines().all(|l| l.contains("\"adapt\"")),
        "diag stream emitted a non-adapt line",
    )?;

    table.print();
    let json = Json::obj([
        ("particles", Json::Int(n as i64)),
        ("steps", Json::Int(steps as i64)),
        ("reps", Json::Int(reps as i64)),
        ("tolerance_pct", Json::Num(tolerance)),
        (
            "steady",
            Json::obj([
                (
                    "static_secs",
                    Json::Obj(steady_json.into_iter().collect::<Vec<_>>()),
                ),
                ("best_static", Json::s(&best_label)),
                ("best_static_secs", Json::Num(best_static)),
                ("adaptive_secs", Json::Num(steady_secs)),
                ("adaptive_over_best", Json::Num(steady_ratio)),
                ("switches", Json::Int(steady_events.len() as i64)),
            ]),
        ),
        (
            "drift",
            Json::obj([
                (
                    "static_secs",
                    Json::Obj(drift_json.into_iter().collect::<Vec<_>>()),
                ),
                ("best_static", Json::s(&best_drift_label)),
                ("best_static_drift_secs", Json::Num(best_drift)),
                ("best_static_total_secs", Json::Num(best_drift_total)),
                ("adaptive_drift_secs", Json::Num(drift_secs)),
                ("adaptive_total_secs", Json::Num(adaptive_total)),
                ("adaptive_over_best", Json::Num(drift_secs / best_drift)),
                ("switches", Json::Int(drift_events.len() as i64)),
                ("shuffle_every", Json::Int(shuffle_every as i64)),
            ]),
        ),
        ("switches_ledgered", Json::Int(total_switches as i64)),
        (
            "diag_stream_sample",
            Json::s(stream_bytes.lines().next().unwrap_or("")),
        ),
    ]);
    let path = results_path("BENCH_adaptive.json");
    write_json_file(&path, &json).map_err(|e| PicError::Config(e.to_string()))?;
    println!("wrote {}", path.display());

    // Timing gates last, after the numbers are on disk for post-mortems.
    gate(
        steady_secs <= best_static * (1.0 + tolerance / 100.0),
        &format!(
            "steady: adaptive {steady_secs:.4}s vs best static {best_label} \
             {best_static:.4}s ({:.1}% over, tolerance {tolerance}%)",
            (steady_ratio - 1.0) * 100.0
        ),
    )?;
    gate(
        drift_secs < best_drift,
        &format!(
            "drift: adaptive drift-phase {drift_secs:.4}s must beat best \
             static sort period ({best_drift_label} at {best_drift:.4}s)"
        ),
    )?;
    gate(
        !drift_events.is_empty(),
        "drift: the controller applied no switches — nothing was adapted",
    )?;
    Ok(())
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}
