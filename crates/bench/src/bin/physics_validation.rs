//! Physics validation — the checks the paper cites (§IV, before Table I):
//! numerical conservation of total energy and the evolution of the electric
//! field for linear/nonlinear Landau damping and the two-stream instability.
//!
//! Usage: physics_validation [--particles N] [--quick]
//!
//! Expected: linear Landau mode damps at γ ≈ −0.153 (k = 0.5); nonlinear
//! Landau damps then rebounds; two-stream fundamental grows exponentially;
//! total energy drift stays at the per-mille level.

use pic_bench::cli::Args;
use pic_bench::table::Table;
use pic_core::sim::{PicConfig, Simulation};
use pic_core::PicError;
use spectral::dispersion;

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let quick = args.has("quick");
    let particles = args.get("particles", if quick { 100_000 } else { 1_000_000 });

    println!("# Physics validation");
    let mut t = Table::new(&["Case", "Quantity", "Measured", "Expected", "Verdict"]);

    // ---- Linear Landau damping ----
    eprintln!("linear Landau ...");
    let mut cfg = PicConfig::landau_table1(particles);
    cfg.grid_nx = 64;
    cfg.grid_ny = 16;
    cfg.dt = 0.05;
    let mut sim = Simulation::new(cfg)?;
    sim.run(300); // t = 15
    let gamma = sim
        .diagnostics()
        .mode_envelope_rate(0.0, 12.0)
        .unwrap_or(f64::NAN);
    let drift = sim.diagnostics().relative_energy_drift();
    // Analytic rate from the plasma dispersion function (not hard-coded).
    // k = 0.5 is well inside the root-finder's convergent range.
    let gamma_theory =
        dispersion::landau_damping_rate(0.5).expect("Z-function root exists at k=0.5");
    let ok = (gamma - gamma_theory).abs() < 0.05;
    t.row(&[
        "Linear Landau (a=0.01, k=0.5)".into(),
        "damping rate".into(),
        format!("{gamma:.3}"),
        format!("{gamma_theory:.4} (Z-function root)"),
        if ok { "OK" } else { "FAIL" }.into(),
    ]);
    let ok = drift < 0.01;
    t.row(&[
        "Linear Landau".into(),
        "energy drift".into(),
        format!("{:.2e}", drift),
        "< 1e-2".into(),
        if ok { "OK" } else { "FAIL" }.into(),
    ]);

    // ---- Nonlinear Landau damping ----
    eprintln!("nonlinear Landau ...");
    let mut cfg = PicConfig::landau_nonlinear(particles);
    cfg.grid_nx = 64;
    cfg.grid_ny = 16;
    cfg.dt = 0.05;
    let mut sim = Simulation::new(cfg)?;
    sim.run(800); // t = 40
    let early = sim
        .diagnostics()
        .mode_envelope_rate(0.0, 10.0)
        .unwrap_or(f64::NAN);
    let late = sim
        .diagnostics()
        .mode_envelope_rate(15.0, 35.0)
        .unwrap_or(f64::NAN);
    let ok = early < -0.1 && late > early;
    t.row(&[
        "Nonlinear Landau (a=0.5)".into(),
        "initial decay / later growth".into(),
        format!("{early:.3} / {late:.3}"),
        "~-0.29 then rebound".into(),
        if ok { "OK" } else { "FAIL" }.into(),
    ]);

    // ---- Two-stream instability ----
    eprintln!("two-stream ...");
    let mut cfg = PicConfig::two_stream(particles);
    cfg.grid_nx = 64;
    cfg.grid_ny = 16;
    cfg.dt = 0.05;
    let mut sim = Simulation::new(cfg)?;
    sim.run(600); // t = 30
                  // Purely growing mode: fit ln|A| directly (no oscillation peaks).
    let growth = sim
        .diagnostics()
        .mode_amplitude_rate(5.0, 20.0)
        .unwrap_or(f64::NAN);
    let h = &sim.diagnostics().history;
    let grew = h[400].ex_mode > 20.0 * h[0].ex_mode;
    let ok = growth > 0.05 && grew;
    t.row(&[
        "Two-stream (v0=3, k=0.2)".into(),
        "growth rate".into(),
        format!("{growth:.3}"),
        "> 0 (unstable)".into(),
        if ok { "OK" } else { "FAIL" }.into(),
    ]);

    t.print();
    Ok(())
}
