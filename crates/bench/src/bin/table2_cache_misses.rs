//! Table II — average millions of cache misses per iteration (L1/L2/L3)
//! during the update-velocities and accumulate loops, per cell ordering,
//! with the improvement row w.r.t. row-major.
//!
//! Usage: table2_cache_misses [--particles N] [--grid G] [--iters I] [--haswell]
//!
//! Expected shape (paper): L1 nearly identical across orderings (−3.5 %);
//! L2 and L3 down ~36 % for L4D/Morton/Hilbert vs row-major.

use cachesim::{CacheConfig, Hierarchy, HierarchyConfig};
use pic_bench::cli::Args;
use pic_bench::literature::TABLE_II_PAPER;
use pic_bench::table::Table;
use pic_bench::workloads;
use pic_core::sim::Simulation;
use pic_core::trace::{trace_accumulate, trace_update_velocities, MemoryMap};
use pic_core::PicError;
use sfc::Ordering;

fn hierarchy(haswell: bool) -> Hierarchy {
    if haswell {
        Hierarchy::new(HierarchyConfig::haswell())
    } else {
        Hierarchy::new(HierarchyConfig {
            levels: vec![
                CacheConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    prefetch: true,
                },
                CacheConfig {
                    size_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    prefetch: true,
                },
                CacheConfig {
                    size_bytes: 2 * 1024 * 1024,
                    ways: 16,
                    line_bytes: 64,
                    prefetch: true,
                },
            ],
        })
    }
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles = args.get("particles", 300_000usize);
    let grid = args.get("grid", 128usize);
    let iters = args.get("iters", 100usize);
    let haswell = args.has("haswell");

    println!("# Table II — average cache misses per iteration (millions)");
    println!(
        "# update-velocities + accumulate loops; particles={particles} grid={grid} iters={iters}"
    );

    let mut rows: Vec<(Ordering, [f64; 3])> = Vec::new();
    for &ordering in &Ordering::paper_set() {
        eprintln!("running {ordering} ...");
        let cfg = workloads::table1(particles, grid, ordering);
        let mut sim = Simulation::new(cfg)?;
        let ncells = grid * grid * 2;
        let map = MemoryMap::contiguous(0, particles, ncells);
        let mut h = hierarchy(haswell);
        for _ in 0..iters {
            trace_update_velocities(sim.particles(), &map, &mut h);
            sim.step();
            trace_accumulate(sim.particles(), &map, &mut h);
        }
        let s = h.stats();
        let per_iter = |lvl: usize| s.level(lvl).misses() as f64 / iters as f64 / 1e6;
        rows.push((ordering, [per_iter(0), per_iter(1), per_iter(2)]));
    }

    let mut t = Table::new(&["Ordering", "L1 (M)", "L2 (M)", "L3 (M)"]);
    for (o, m) in &rows {
        t.row(&[
            o.to_string(),
            format!("{:.2}", m[0]),
            format!("{:.2}", m[1]),
            format!("{:.3}", m[2]),
        ]);
    }
    let rm = rows[0].1;
    let best = |lvl: usize| {
        rows[1..]
            .iter()
            .map(|(_, m)| m[lvl])
            .fold(f64::MAX, f64::min)
    };
    t.row(&[
        "Improvement (w.r.t. row-major)".into(),
        format!("{:+.1}%", 100.0 * (best(0) / rm[0] - 1.0)),
        format!("{:+.1}%", 100.0 * (best(1) / rm[1] - 1.0)),
        format!("{:+.1}%", 100.0 * (best(2) / rm[2] - 1.0)),
    ]);
    t.print();

    println!("\n# Paper values (50 M particles, hardware counters):");
    let mut p = Table::new(&["Ordering", "L1 (M)", "L2 (M)", "L3 (M)"]);
    for r in &TABLE_II_PAPER {
        p.row(&[
            r.ordering.into(),
            format!("{:.1}", r.l1),
            format!("{:.1}", r.l2),
            format!("{:.2}", r.l3),
        ]);
    }
    p.print();
    Ok(())
}
