//! Figure 8 — memory bandwidth of each particle loop vs the STREAM triad
//! ceiling, at 1/2/4/8 threads.
//!
//! Bandwidth = (bytes the loop must move per particle) × particles / time,
//! with the per-loop byte counts from the instrumented kernels
//! (`pic_core::trace::bytes_per_particle`). STREAM (copy/scale/add/triad)
//! is implemented in `pic_bench::membench`.
//!
//! Usage: fig8_memory_bandwidth [--particles N] [--grid G] [--iters I]
//!                              [--max-threads T]
//!
//! Expected shape (paper Fig. 8): update-positions reaches the STREAM
//! ceiling (it is a pure streaming loop) and stops scaling once the memory
//! channels saturate; update-velocities and accumulate sit well below the
//! ceiling (latency-bound gathers/scatters on E and ρ) and keep scaling.

use pic_bench::cli::Args;
use pic_bench::membench;
use pic_bench::table::Table;
use pic_bench::workloads::{self, run_fresh};
use pic_core::trace::bytes_per_particle;
use pic_core::PicError;
use sfc::Ordering;

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles = args.get("particles", workloads::DEFAULT_PARTICLES);
    let grid = args.get("grid", workloads::DEFAULT_GRID);
    let iters = args.get("iters", 30usize);
    let max_threads = args.get("max-threads", 8usize);

    println!("# Fig. 8 — memory bandwidth per loop vs STREAM (GB/s)");
    println!("# particles={particles} grid={grid} iters={iters}");

    let (bv, bx, ba) = bytes_per_particle();
    let total_v = (bv * particles as u64 * iters as u64) as f64;
    let total_x = (bx * particles as u64 * iters as u64) as f64;
    let total_a = (ba * particles as u64 * iters as u64) as f64;

    let mut t = Table::new(&[
        "Threads",
        "Stream triad",
        "Update v",
        "Update x",
        "Accumulation",
    ]);
    let mut threads = 1usize;
    while threads <= max_threads {
        eprintln!("running {threads} thread(s) ...");
        let stream = membench::triad(20_000_000, 5, threads).gbs();

        let mut cfg = workloads::table1(particles, grid, Ordering::Morton);
        cfg.threads = threads;
        cfg.sort_period = 50;
        let sim = run_fresh(cfg, iters)?;
        let ph = sim.timers();
        let gb = |bytes: f64, s: f64| bytes / s / 1e9;
        let row = [
            stream,
            gb(total_v, ph.update_v),
            gb(total_x, ph.update_x),
            gb(total_a, ph.accumulate),
        ];
        t.row(&[
            threads.to_string(),
            format!("{:.1}", row[0]),
            format!("{:.1}", row[1]),
            format!("{:.1}", row[2]),
            format!("{:.1}", row[3]),
        ]);
        threads *= 2;
    }
    t.print();
    println!("\n# Paper Fig. 8 (Sandy Bridge socket, peak 51.2 GB/s): update-x tracks the");
    println!("# STREAM triad and saturates at 8 threads; update-v and accumulate stay far");
    println!("# below peak (cache misses on E/rho) and scale further.");
    Ok(())
}
