//! Table V — nanoseconds per particle per iteration, by loop, compared to
//! the published Decyk & Singh (2014) numbers and the paper's own columns.
//!
//! Usage: table5_per_particle_ns [--particles N] [--grid G] [--iters I]
//!                               [--kernel-path scalar|lanes]
//!                               [--sort-sweep]  # sweep the sorting period
//!
//! Expected shape: push (update-v + update-x) dominates; accumulate around
//! a third of push; sorting amortized small. Absolute values depend on the
//! host machine — the paper's point is the ranking and the rough ratios.

use pic_bench::cli::Args;
use pic_bench::literature::{BARSAMIAN_HASWELL, BARSAMIAN_SANDY_BRIDGE, DECYK_SINGH_NEHALEM};
use pic_bench::ns_per_particle;
use pic_bench::table::Table;
use pic_bench::workloads::{self, run_fresh};
use pic_core::sim::KernelPath;
use pic_core::PicError;
use sfc::Ordering;

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles = args.get("particles", workloads::DEFAULT_PARTICLES);
    let grid = args.get("grid", workloads::DEFAULT_GRID);
    let iters = args.get("iters", workloads::DEFAULT_ITERS);
    let path_name = args.get("kernel-path", "lanes".to_string());
    let kernel_path = match path_name.as_str() {
        "scalar" => KernelPath::Scalar,
        "lanes" => KernelPath::Lanes,
        other => {
            return Err(PicError::Config(format!(
                "unknown --kernel-path '{other}' (expected scalar or lanes)"
            )))
        }
    };

    println!("# Table V — time per particle per iteration (nanoseconds)");
    println!("# particles={particles} grid={grid} iters={iters} kernel-path={path_name}");

    let mut cfg = workloads::table1(particles, grid, Ordering::Morton);
    cfg.kernel_path = kernel_path;
    eprintln!("running optimized configuration ...");
    let sim = run_fresh(cfg, iters)?;
    let ph = sim.timers();
    let ns = |s: f64| ns_per_particle(s, particles, iters);

    let mut t = Table::new(&[
        "Step",
        "Decyk&Singh (Nehalem)",
        "Paper (SandyBridge)",
        "Paper (Haswell)",
        "This repo (host)",
    ]);
    t.row(&[
        "Push".into(),
        format!("{:.1}", DECYK_SINGH_NEHALEM.push_ns),
        format!("{:.1}", BARSAMIAN_SANDY_BRIDGE.push_ns),
        format!("{:.1}", BARSAMIAN_HASWELL.push_ns),
        format!("{:.1}", ns(ph.push())),
    ]);
    t.row(&[
        "Accumulate".into(),
        format!("{:.1}", DECYK_SINGH_NEHALEM.accumulate_ns),
        format!("{:.1}", BARSAMIAN_SANDY_BRIDGE.accumulate_ns),
        format!("{:.1}", BARSAMIAN_HASWELL.accumulate_ns),
        format!("{:.1}", ns(ph.accumulate)),
    ]);
    t.row(&[
        "Reorder".into(),
        format!("{:.1}", DECYK_SINGH_NEHALEM.reorder_ns.unwrap()),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        "Sorting".into(),
        "-".into(),
        format!("{:.1}", BARSAMIAN_SANDY_BRIDGE.sorting_ns.unwrap()),
        format!("{:.1}", BARSAMIAN_HASWELL.sorting_ns.unwrap()),
        format!("{:.1}", ns(ph.sort)),
    ]);
    t.row(&[
        "Total".into(),
        format!("{:.1}", DECYK_SINGH_NEHALEM.total()),
        format!("{:.1}", BARSAMIAN_SANDY_BRIDGE.total()),
        format!("{:.1}", BARSAMIAN_HASWELL.total()),
        format!("{:.1}", ns(ph.push() + ph.accumulate + ph.sort)),
    ]);
    t.print();

    if args.has("sort-sweep") {
        println!("\n# Sorting-period sweep (paper: optimum 20 on Haswell, 50 on Sandy Bridge)");
        let mut t = Table::new(&["Sort every", "Total(s)", "ns/particle/iter"]);
        for period in [5usize, 10, 20, 50, 100, 0] {
            let mut cfg = workloads::table1(particles, grid, Ordering::Morton);
            cfg.kernel_path = kernel_path;
            cfg.sort_period = period;
            let sim = run_fresh(cfg, iters)?;
            let total = sim.timers().total();
            let label = if period == 0 {
                "never".to_string()
            } else {
                period.to_string()
            };
            t.row(&[
                label,
                format!("{total:.2}"),
                format!("{:.1}", ns_per_particle(total, particles, iters)),
            ]);
        }
        t.print();
    }
    Ok(())
}
