//! Table VII — AoS vs SoA × one fused loop vs three split loops, on
//! multiple threads (the paper uses 8, pure OpenMP).
//!
//! Usage: table7_aos_soa_loops [--particles N] [--grid G] [--iters I] [--threads T]
//!
//! Expected shape (paper: 30.9 / 22.7 / 23.1 / 18.3 s): SoA beats AoS in
//! both loop shapes, splitting beats fusing in both layouts, and the
//! combination (SoA, 3 loops) wins.

use pic_bench::cli::Args;
use pic_bench::table::{secs, Table};
use pic_bench::workloads::{self, run_fresh, table7_variants};
use pic_core::PicError;
use sfc::Ordering;
use std::time::Instant;

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles = args.get("particles", workloads::DEFAULT_PARTICLES);
    let grid = args.get("grid", workloads::DEFAULT_GRID);
    let iters = args.get("iters", 50usize);
    let threads = args.get("threads", 8usize);

    println!("# Table VII — time spent in the simulation (AoS/SoA x 1/3 loops)");
    println!("# particles={particles} grid={grid} iters={iters} threads={threads} sort-every=50");

    let mut t = Table::new(&["Variant", "Wall time (s)"]);
    for (label, pl, ls) in table7_variants() {
        eprintln!("running {label} ...");
        let mut cfg = workloads::table1(particles, grid, Ordering::RowMajor);
        cfg.particle_layout = pl;
        cfg.loop_structure = ls;
        cfg.threads = threads;
        cfg.sort_period = 50;
        let wall = Instant::now();
        let _sim = run_fresh(cfg, iters)?;
        t.row(&[label.to_string(), secs(wall.elapsed().as_secs_f64())]);
    }
    t.print();
    println!("\n# Paper (8 threads, Sandy Bridge): AoS/1: 30.9  AoS/3: 22.7  SoA/1: 23.1  SoA/3: 18.3 (s)");
    Ok(())
}
