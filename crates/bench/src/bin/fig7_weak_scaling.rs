//! Figure 7 — weak scaling of the process-level parallelism: fixed
//! particles per rank, the per-step `allreduce` of ρ being the only
//! communication, pure-MPI vs hybrid MPI+OpenMP.
//!
//! Two stages:
//! 1. **measured**: `minimpi` ranks (OS threads) each run a real simulation
//!    slice and allreduce ρ every step, up to the host's core count;
//! 2. **extrapolated**: a LogGP cost model, calibrated on the measured
//!    allreduce times, extends the curves to 8 192 ranks. Pure-MPI charges
//!    the per-node injection serialization (16 ranks share a NIC on Curie),
//!    which is what makes its communication share blow up in the paper.
//!
//! Usage: fig7_weak_scaling [--particles-per-rank N] [--grid G] [--iters I]
//!                          [--max-ranks R]
//!
//! Expected shape (paper Fig. 7): hybrid communication stays ≤ 28 % at
//! 8 192 cores; pure MPI crosses 50 %.

use minimpi::cost::{weak_scaling, CostModel};
use minimpi::World;
use pic_bench::cli::Args;
use pic_bench::table::Table;
use pic_bench::workloads;
use pic_core::sim::Simulation;
use pic_core::PicError;
use sfc::Ordering;
use std::time::Instant;

/// Ranks sharing one node's network interface on Curie (2 × 8 cores).
const RANKS_PER_NODE: usize = 16;

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let per_rank = args.get("particles-per-rank", 200_000usize);
    let grid = args.get("grid", 128usize);
    let iters = args.get("iters", 20usize);
    let max_ranks = args.get(
        "max-ranks",
        std::thread::available_parallelism().map_or(4, |c| c.get()),
    );

    println!("# Fig. 7 — weak scaling (fixed particles per rank, allreduce of rho each step)");
    println!("# particles/rank={per_rank} grid={grid}x{grid} iters={iters}");

    // ---- Stage 1: measured in-process runs ----
    println!("\n## Measured (minimpi thread ranks on this host)");
    let mut t = Table::new(&["Ranks", "Total (s)", "Comm (s)", "Comm %"]);
    let mut samples: Vec<(usize, usize, f64)> = Vec::new();
    let grid_bytes = grid * grid * 8;
    let mut ranks = 1usize;
    while ranks <= max_ranks {
        eprintln!("measuring {ranks} rank(s) ...");
        let results = World::run(ranks, |comm| -> Result<(f64, f64), PicError> {
            // One global particle population, sliced across ranks (§V-A).
            let mut cfg = workloads::table1(per_rank * comm.size(), grid, Ordering::Morton);
            let r = comm.rank();
            cfg.keep_range = Some((r * per_rank, (r + 1) * per_rank));
            let mut sim = Simulation::new_with_reduce(cfg, |rho| comm.allreduce_sum(rho))?;
            let wall = Instant::now();
            for _ in 0..iters {
                sim.step_with_reduce(|rho| comm.allreduce_sum(rho));
            }
            Ok((wall.elapsed().as_secs_f64(), comm.comm_time()))
        });
        let results: Vec<(f64, f64)> = results.into_iter().collect::<Result<_, _>>()?;
        let total = results.iter().map(|r| r.0).sum::<f64>() / ranks as f64;
        let comm = results.iter().map(|r| r.1).sum::<f64>() / ranks as f64;
        t.row(&[
            ranks.to_string(),
            format!("{total:.2}"),
            format!("{comm:.3}"),
            format!("{:.1}%", 100.0 * comm / total),
        ]);
        if ranks > 1 {
            samples.push((ranks, grid_bytes, comm / iters as f64));
        }
        ranks *= 2;
    }
    t.print();

    // ---- Stage 2: model extrapolation to 8192 ranks ----
    // A single payload size makes the two-parameter fit singular; fit_tree
    // then returns None and the Curie-like constants carry the shape.
    let fitted = CostModel::fit_tree(&samples);
    let model = fitted.unwrap_or_else(CostModel::curie_like);
    println!(
        "\n## Extrapolation (LogGP tree model: alpha={:.2e}s beta={:.2e}s/B, {})",
        model.alpha,
        model.beta,
        if fitted.is_some() {
            "fitted from measured runs"
        } else {
            "Curie-like constants (fit underdetermined at one payload size)"
        }
    );
    // Per-step compute time of one rank (measured at 1 rank).
    let compute = {
        let cfg = workloads::table1(per_rank, grid, Ordering::Morton);
        let mut sim = Simulation::new(cfg)?;
        let wall = Instant::now();
        sim.run(iters);
        wall.elapsed().as_secs_f64() / iters as f64
    };

    let procs: Vec<usize> = (0..14).map(|i| 1usize << i).collect(); // 1..8192
    let hybrid = weak_scaling(&model, compute, grid_bytes, &procs, true);
    // Pure MPI: same tree depth but the per-node NIC serializes the 16
    // resident ranks' messages each round — α is effectively 16× larger.
    let contended = CostModel {
        alpha: model.alpha * RANKS_PER_NODE as f64,
        beta: model.beta * RANKS_PER_NODE as f64,
    };
    let pure = weak_scaling(&contended, compute, grid_bytes, &procs, true);

    let mut t = Table::new(&[
        "Cores",
        "Hybrid total/step (s)",
        "Hybrid comm %",
        "PureMPI total/step (s)",
        "PureMPI comm %",
    ]);
    for (h, p) in hybrid.iter().zip(&pure) {
        // Hybrid: 1 rank per socket (8 threads), so the allreduce involves
        // cores/8 ranks while compute uses every core.
        let hybrid_ranks = (h.procs / 8).max(1);
        let hcomm = model.allreduce(hybrid_ranks, grid_bytes);
        let htot = compute + hcomm;
        t.row(&[
            h.procs.to_string(),
            format!("{htot:.4}"),
            format!("{:.0}%", 100.0 * hcomm / htot),
            format!("{:.4}", p.total()),
            format!("{:.0}%", p.comm_percent()),
        ]);
    }
    t.print();
    println!(
        "\n# Paper Fig. 7: hybrid comm reaches 28% at 8192 cores; pure MPI 56% already at 4096."
    );
    Ok(())
}
