//! Multi-species 2d3v electromagnetic validation gate.
//!
//! Runs the four checkpointable validation scenarios of
//! [`pic_core::em::EmConfig`] — cyclotron motion, magnetized two-stream,
//! bump-on-tail, and ion-acoustic waves — and gates on:
//!
//! * **cyclotron closed forms** — the simulated gyro-period and
//!   gyro-radius match `2πm/(|q|B)` and `v₀m/(|q|B)` within 1 %, and the
//!   Boris rotation conserves speed to rounding;
//! * **two-stream growth** — mode 1 of `E_x` grows through the linear
//!   phase (qualitative instability check);
//! * **per-species conservation** — total charge is exactly conserved
//!   (markers are never lost), the axial momentum component is untouched
//!   by `B ∥ ẑ`, and the unmagnetized scenarios conserve total momentum
//!   across the species exchange;
//! * **checkpoint determinism** — a mid-run snapshot resumes to a
//!   byte-identical final checkpoint in every scenario;
//! * **lane-vs-scalar parity** — `KernelPath::{Scalar,Lanes}` produce
//!   bit-identical particle state under `DepositPath::Exact`, and one
//!   `LaneReduce` deposit stays within the reassociation bound of the
//!   exact order.
//!
//! Results land in `results/BENCH_species.json`.
//!
//! Usage: bench_species [--particles N]

use pic_bench::cli::Args;
use pic_bench::report::{results_path, write_json_file, Json};
use pic_bench::table::Table;
use pic_core::em::{EmConfig, EmSimulation};
use pic_core::kernels::deposit::DepositPath;
use pic_core::sim::KernelPath;
use pic_core::PicError;
use std::f64::consts::PI;

fn gate(cond: bool, what: &str) -> Result<(), PicError> {
    if cond {
        Ok(())
    } else {
        Err(PicError::Diverged(format!("species gate: {what}")))
    }
}

/// Upper-bound scale for total-momentum drift: per species
/// `√(2·E_kin·m·N) = m·w·√(n·Σ|v|²) ≥ |Σ m·w·v|` by Cauchy–Schwarz.
fn momentum_scale(sim: &EmSimulation) -> f64 {
    sim.config()
        .species
        .iter()
        .zip(sim.moments())
        .map(|(def, m)| (2.0 * m.kinetic * def.mass * m.number).sqrt())
        .sum::<f64>()
        .max(f64::MIN_POSITIVE)
}

/// Conservation + mid-run checkpoint/restore gates shared by every
/// scenario. Returns the per-scenario JSON fragment.
fn run_scenario(t: &mut Table, name: &str, cfg: EmConfig, steps: usize) -> Result<Json, PicError> {
    let mut sim = EmSimulation::new(cfg.clone())?;
    let p0 = sim.total_momentum();
    let pscale = momentum_scale(&sim);

    let half = steps / 2;
    sim.run(half);
    let snap = sim.checkpoint();
    sim.run(steps - half);
    let final_ckpt = sim.checkpoint();

    let mut resumed = EmSimulation::from_snapshot(cfg.clone(), &snap)?;
    resumed.run(steps - half);
    let ckpt_exact = resumed.checkpoint() == final_ckpt;
    gate(
        ckpt_exact,
        &format!("{name}: mid-run checkpoint did not resume bit-exactly"),
    )?;

    let qscale = sim
        .moments()
        .iter()
        .map(|m| m.charge.abs())
        .sum::<f64>()
        .max(1.0);
    let charge_drift = (sim.total_charge() - sim.charge_reference()).abs() / qscale;
    gate(
        charge_drift < 1e-9,
        &format!("{name}: charge drift {charge_drift:.2e}"),
    )?;

    let p1 = sim.total_momentum();
    let magnetized = cfg.b0 != [0.0; 3];
    let (which, pdrift, ptol) = if magnetized {
        // B only rotates p⟂; with B ∥ ẑ and Ez = 0 the axial component
        // is bit-for-bit untouched by the Boris rotation.
        ("pz", (p1[2] - p0[2]).abs() / pscale, 1e-12)
    } else {
        let d =
            ((p1[0] - p0[0]).powi(2) + (p1[1] - p0[1]).powi(2) + (p1[2] - p0[2]).powi(2)).sqrt();
        ("|p|", d / pscale, 1e-6)
    };
    gate(
        pdrift < ptol,
        &format!("{name}: momentum ({which}) drift {pdrift:.2e} ≥ {ptol:.0e}"),
    )?;

    let energy_drift = if cfg.solve_e {
        let d = sim.diagnostics().relative_energy_drift();
        gate(d < 0.05, &format!("{name}: energy drift {d:.3}"))?;
        d
    } else {
        0.0
    };

    t.row(&[
        name.into(),
        format!("{} steps", steps),
        format!("q {charge_drift:.1e} / {which} {pdrift:.1e}"),
        format!("E {energy_drift:.4}"),
        "OK".into(),
    ]);

    Ok(Json::obj([
        ("steps", Json::Int(steps as i64)),
        ("checkpoint_bit_exact", Json::Bool(ckpt_exact)),
        ("charge_drift", Json::Num(charge_drift)),
        ("momentum_component", Json::s(which)),
        ("momentum_drift", Json::Num(pdrift)),
        ("energy_drift", Json::Num(energy_drift)),
    ]))
}

/// Kernel-path bit-identity under the exact deposit order, plus the
/// bounded `LaneReduce` reassociation check for one deposit.
fn lane_parity(name: &str, cfg: &EmConfig, steps: usize) -> Result<Json, PicError> {
    let exact = |path: KernelPath| {
        let mut c = cfg.clone();
        c.kernel_path = path;
        c.deposit_path = DepositPath::Exact;
        c
    };
    let mut a = EmSimulation::new(exact(KernelPath::Scalar))?;
    let mut b = EmSimulation::new(exact(KernelPath::Lanes))?;
    a.run(steps);
    b.run(steps);
    let mut bit = a.rho() == b.rho() && a.j_field() == b.j_field();
    for (sa, sb) in a.species().iter().zip(b.species()) {
        bit &= sa.p.icell == sb.p.icell
            && sa.p.dx == sb.p.dx
            && sa.p.dy == sb.p.dy
            && sa.p.vx == sb.p.vx
            && sa.p.vy == sb.p.vy
            && sa.vz == sb.vz;
    }
    gate(
        bit,
        &format!("{name}: Scalar and Lanes paths diverged under Exact deposit"),
    )?;

    // One step from a shared snapshot, exact vs lane-reduced deposit: the
    // grids may differ only by summation reassociation.
    let snap = a.checkpoint();
    let mut e = EmSimulation::from_snapshot(exact(KernelPath::Scalar), &snap)?;
    let mut l = EmSimulation::from_snapshot(exact(KernelPath::Scalar), &snap)?;
    l.set_deposit_path(DepositPath::LaneReduce);
    e.step();
    l.step();
    let rel_diff = |x: &[f64], y: &[f64]| {
        let scale = x.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
        x.iter()
            .zip(y)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
            / scale
    };
    let (ejx, ejy, ejz) = e.j_field();
    let (ljx, ljy, ljz) = l.j_field();
    let max_rel = [
        rel_diff(e.rho(), l.rho()),
        rel_diff(ejx, ljx),
        rel_diff(ejy, ljy),
        rel_diff(ejz, ljz),
    ]
    .into_iter()
    .fold(0.0f64, f64::max);
    gate(
        max_rel < 1e-9,
        &format!("{name}: LaneReduce deposit off by {max_rel:.2e} relative"),
    )?;

    Ok(Json::obj([
        ("kernel_paths_bit_identical", Json::Bool(bit)),
        ("lane_reduce_max_rel", Json::Num(max_rel)),
    ]))
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let particles: usize = args.get("particles", 4_000);
    let mut t = Table::new(&[
        "Scenario",
        "Run",
        "Drift (charge/momentum)",
        "Energy",
        "Verdict",
    ]);
    let mut scenarios: Vec<(&str, Json)> = Vec::new();

    // ---- Cyclotron: closed-form gyro-period and gyro-radius ----
    eprintln!("cyclotron ...");
    let cyc_cfg = EmConfig::cyclotron(particles.min(1_024));
    let dt = cyc_cfg.dt;
    let mut sim = EmSimulation::new(cyc_cfg.clone())?;
    let steps = 126; // ≈ one analytic period 2π at dt = 0.05
    let mut prev = sim.moments()[0].mean_v;
    let mut total_rotation = 0.0;
    let (mut x, mut min_x, mut max_x) = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..steps {
        sim.step();
        let cur = sim.moments()[0].mean_v;
        // Per-step rotation of the mean velocity, wrapped to (−π, π].
        let da = cur[1].atan2(cur[0]) - prev[1].atan2(prev[0]);
        total_rotation += (da + PI).rem_euclid(2.0 * PI) - PI;
        prev = cur;
        // Integrated mean displacement: its x-extent spans one diameter.
        x += dt * cur[0];
        min_x = min_x.min(x);
        max_x = max_x.max(x);
    }
    let period = steps as f64 * dt * 2.0 * PI / total_rotation.abs();
    let period_rel = (period - 2.0 * PI).abs() / (2.0 * PI);
    gate(
        period_rel < 0.01,
        &format!("cyclotron: gyro-period {period:.5} vs 2π ({period_rel:.2e} rel)"),
    )?;
    let radius = (max_x - min_x) / 2.0;
    let radius_rel = (radius - 0.5).abs() / 0.5;
    gate(
        radius_rel < 0.01,
        &format!("cyclotron: gyro-radius {radius:.5} vs 0.5 ({radius_rel:.2e} rel)"),
    )?;
    let m0 = sim.moments()[0];
    let speed = (m0.mean_v[0].powi(2) + m0.mean_v[1].powi(2)).sqrt();
    gate(
        (speed - 0.5).abs() < 1e-12,
        &format!("cyclotron: speed {speed} not conserved"),
    )?;
    t.row(&[
        "cyclotron".into(),
        format!("{steps} steps"),
        format!("T {period_rel:.1e} / r {radius_rel:.1e}"),
        "exact".into(),
        "OK".into(),
    ]);
    let mut cyc_json = match run_scenario(&mut t, "cyclotron-conservation", cyc_cfg.clone(), 64)? {
        Json::Obj(pairs) => pairs,
        _ => unreachable!(),
    };
    cyc_json.push(("gyro_period_rel".into(), Json::Num(period_rel)));
    cyc_json.push(("gyro_radius_rel".into(), Json::Num(radius_rel)));
    scenarios.push(("cyclotron", Json::Obj(cyc_json)));

    // ---- Magnetized two-stream: qualitative instability growth ----
    eprintln!("magnetized two-stream ...");
    // The growth gate needs the seeded mode above the marker noise floor,
    // so it runs at ≥ 40 k electrons regardless of the CLI knob.
    let ts_cfg = EmConfig::magnetized_two_stream(particles.max(40_000));
    let mut ts = EmSimulation::new(ts_cfg.clone())?;
    ts.run(500); // t = 25: linear growth, saturation, trapping oscillations
    let h = &ts.diagnostics().history;
    let peak = h.iter().map(|s| s.ex_mode).fold(0.0f64, f64::max);
    let growth_factor = peak / h[0].ex_mode.max(f64::MIN_POSITIVE);
    gate(
        growth_factor > 5.0,
        &format!("two-stream: mode 1 peaked only {growth_factor:.1}× above its seed"),
    )?;
    let growth_rate = ts
        .diagnostics()
        .mode_amplitude_rate(5.0, 15.0)
        .unwrap_or(f64::NAN);
    gate(
        growth_rate > 0.03,
        &format!("two-stream: linear-phase growth rate {growth_rate:.3} ≤ 0.03"),
    )?;
    let mut ts_json = match run_scenario(&mut t, "magnetized-two-stream", ts_cfg.clone(), 200)? {
        Json::Obj(pairs) => pairs,
        _ => unreachable!(),
    };
    ts_json.push(("mode1_growth_factor".into(), Json::Num(growth_factor)));
    scenarios.push(("magnetized_two_stream", Json::Obj(ts_json)));

    // ---- Bump-on-tail and ion-acoustic: conservation + checkpoints ----
    eprintln!("bump-on-tail ...");
    let bot_cfg = EmConfig::bump_on_tail(particles);
    scenarios.push((
        "bump_on_tail",
        run_scenario(&mut t, "bump-on-tail", bot_cfg.clone(), 200)?,
    ));
    eprintln!("ion-acoustic ...");
    let ia_cfg = EmConfig::ion_acoustic(particles);
    scenarios.push((
        "ion_acoustic",
        run_scenario(&mut t, "ion-acoustic", ia_cfg.clone(), 200)?,
    ));

    // ---- Lane-vs-scalar parity on every scenario ----
    let mut parity: Vec<(&str, Json)> = Vec::new();
    for (name, cfg) in [
        ("cyclotron", &cyc_cfg),
        ("magnetized_two_stream", &ts_cfg),
        ("bump_on_tail", &bot_cfg),
        ("ion_acoustic", &ia_cfg),
    ] {
        eprintln!("parity: {name} ...");
        parity.push((name, lane_parity(name, cfg, 24)?));
    }
    t.row(&[
        "lane parity".into(),
        "4 scenarios".into(),
        "bit-identical (Exact)".into(),
        "bounded (LaneReduce)".into(),
        "OK".into(),
    ]);
    t.print();

    let json = Json::obj([
        ("bench", Json::s("species")),
        ("particles", Json::Int(particles as i64)),
        (
            "scenarios",
            Json::Obj(
                scenarios
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
        (
            "parity",
            Json::Obj(
                parity
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
    ]);
    let path = results_path("BENCH_species.json");
    write_json_file(&path, &json).map_err(|e| PicError::Io(e.to_string()))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}
