//! Multi-tenant job runtime gate: fault isolation and scheduling quality.
//!
//! A mixed workload — healthy short and long tenants plus an injected
//! hang, an injected kill, and a poison job — is drained twice, once under
//! the SRTF-preemptive scheduler and once under the naive FIFO baseline.
//! The run gates on:
//!
//! * **zero healthy jobs lost** — every non-poison job reaches `Done`
//!   under both policies (hang and kill recover from checkpoints);
//! * **quarantine** — the poison job is `Quarantined` within its fault
//!   window under both policies, with its ledger slice attached;
//! * **determinism** — each job's trajectory digest is identical under
//!   both schedules (preemption order must not leak into physics);
//! * **makespan** — SRTF beats FIFO, whose head-of-line blocks the queue
//!   during every backoff sleep;
//! * **shedding** — an overload burst against a bounded queue sheds
//!   exactly the accounted jobs, every one ledgered;
//! * **result cache** — resubmitting a completed config is a cache hit
//!   with the same digest.
//!
//! Latency quantiles and per-job accounting land in
//! `results/BENCH_jobs.json`.
//!
//! Usage: bench_jobs [--particles N]

use pic_bench::cli::Args;
use pic_bench::report::{results_path, write_json_file, Json};
use pic_core::faultlog::FaultKind;
use pic_core::sim::PicConfig;
use pic_core::PicError;
use serve::{FaultInjection, JobRuntime, JobSpec, JobState, RuntimeConfig, SchedPolicy};
use std::time::Duration;

fn small_cfg(seed: u64, n_particles: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n_particles);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 4;
    cfg.seed = seed;
    cfg
}

/// The faulty tenants lead the submission order so the FIFO baseline pays
/// their backoff sleeps as head-of-line blocking — the structural cost the
/// preemptive scheduler exists to avoid.
fn workload(short_n: usize, long_n: usize) -> Vec<JobSpec> {
    vec![
        JobSpec::new("hang", small_cfg(101, short_n), 24)
            .with_injection(FaultInjection::Hang {
                at_step: 6,
                millis: 150,
            })
            .with_slice_timeout(Duration::from_millis(50)),
        JobSpec::new("kill", small_cfg(102, short_n), 24)
            .with_injection(FaultInjection::Kill { at_step: 10 }),
        JobSpec::new("poison", small_cfg(103, short_n), 20)
            .with_injection(FaultInjection::Poison { at_step: 4 }),
        JobSpec::new("short-1", small_cfg(104, short_n), 12),
        JobSpec::new("short-2", small_cfg(105, short_n), 12),
        JobSpec::new("short-3", small_cfg(106, short_n), 12),
        JobSpec::new("long-1", small_cfg(107, long_n), 80),
        JobSpec::new("long-2", small_cfg(108, long_n), 80),
    ]
}

fn rcfg(policy: SchedPolicy) -> RuntimeConfig {
    RuntimeConfig {
        quantum_steps: 8,
        retry_base: Duration::from_millis(40),
        policy,
        ..RuntimeConfig::default()
    }
}

fn gate(cond: bool, what: &str) -> Result<(), PicError> {
    if cond {
        Ok(())
    } else {
        Err(PicError::Diverged(format!("job runtime gate: {what}")))
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn policy_json(name: &str, report: &serve::RunReport) -> (&'static str, Json) {
    let jobs = report
        .jobs
        .iter()
        .map(|j| {
            Json::obj([
                ("name", Json::s(j.name.clone())),
                ("state", Json::s(j.state.name())),
                ("steps_done", Json::Int(j.steps_done as i64)),
                ("retries", Json::Int(j.retries as i64)),
                ("preemptions", Json::Int(j.preemptions as i64)),
                ("restores", Json::Int(j.restores as i64)),
                (
                    "latency_ms",
                    j.latency.map_or(Json::Null, |l| Json::Num(ms(l))),
                ),
            ])
        })
        .collect();
    let obj = Json::obj([
        ("makespan_ms", Json::Num(ms(report.makespan))),
        (
            "latency_p50_ms",
            report
                .latency_quantile(0.50)
                .map_or(Json::Null, |l| Json::Num(ms(l))),
        ),
        (
            "latency_p99_ms",
            report
                .latency_quantile(0.99)
                .map_or(Json::Null, |l| Json::Num(ms(l))),
        ),
        ("quarantined", Json::Int(report.quarantined_jobs as i64)),
        ("jobs", Json::Arr(jobs)),
    ]);
    (if name == "srtf" { "srtf" } else { "fifo" }, obj)
}

fn run() -> Result<(), PicError> {
    let args = Args::from_env();
    let short_n: usize = args.get("particles", 2_500);
    let long_n = short_n * 8 / 5;

    // ---- Section 1: mixed workload, SRTF vs FIFO -------------------------
    let mut srtf = JobRuntime::new(rcfg(SchedPolicy::SrtfPreempt));
    for spec in workload(short_n, long_n) {
        srtf.submit(spec);
    }
    let srtf_report = srtf.run();

    let mut fifo = JobRuntime::new(rcfg(SchedPolicy::Fifo));
    for spec in workload(short_n, long_n) {
        fifo.submit(spec);
    }
    let fifo_report = fifo.run();

    println!(
        "job runtime gate: mixed workload ({} jobs)",
        srtf_report.jobs.len()
    );
    println!(
        "  {:<10} {:>12} {:>12}  {:>7} {:>8} {:>9}",
        "job", "srtf", "fifo", "retries", "preempts", "steps"
    );
    for (s, f) in srtf_report.jobs.iter().zip(&fifo_report.jobs) {
        println!(
            "  {:<10} {:>12} {:>12}  {:>7} {:>8} {:>9}",
            s.name,
            s.state.name(),
            f.state.name(),
            s.retries,
            s.preemptions,
            s.steps_done
        );
    }
    println!(
        "  makespan: srtf {:.1} ms vs fifo {:.1} ms",
        ms(srtf_report.makespan),
        ms(fifo_report.makespan)
    );

    for report in [&srtf_report, &fifo_report] {
        for j in &report.jobs {
            if j.name == "poison" {
                gate(
                    j.state == JobState::Quarantined,
                    &format!("poison job ended {} instead of quarantined", j.state.name()),
                )?;
                gate(
                    j.evidence.iter().any(|e| e.kind == FaultKind::Quarantine),
                    "quarantine verdict missing from the evidence slice",
                )?;
            } else {
                gate(
                    j.state == JobState::Done,
                    &format!("healthy job {} lost ({})", j.name, j.state.name()),
                )?;
            }
        }
        gate(
            report.quarantined_jobs == 1,
            "exactly one job should be quarantined",
        )?;
    }
    for (s, f) in srtf_report.jobs.iter().zip(&fifo_report.jobs) {
        gate(
            s.digest == f.digest,
            &format!("job {} digest differs between schedules", s.name),
        )?;
    }
    gate(
        srtf_report.makespan + Duration::from_millis(10) < fifo_report.makespan,
        &format!(
            "SRTF makespan {:.1} ms did not beat FIFO {:.1} ms",
            ms(srtf_report.makespan),
            ms(fifo_report.makespan)
        ),
    )?;

    // ---- Section 2: result cache on resubmission -------------------------
    let dup = srtf.submit(JobSpec::new("short-1-dup", small_cfg(104, short_n), 12));
    let cache_report = srtf.run();
    let dup_job = &cache_report.jobs[dup.0 as usize];
    let orig = cache_report
        .jobs
        .iter()
        .find(|j| j.name == "short-1")
        .expect("original short-1");
    gate(dup_job.cache_hit, "identical resubmission missed the cache")?;
    gate(
        dup_job.digest == orig.digest,
        "cache served a different digest than the original run",
    )?;
    let (hits, misses) = srtf.cache_stats();
    println!("  cache: {hits} hits / {misses} misses after resubmission");

    // ---- Section 3: overload burst against a bounded queue ---------------
    let mut burst = JobRuntime::new(RuntimeConfig {
        max_active: 3,
        quantum_steps: 8,
        ..RuntimeConfig::default()
    });
    let deadlines = [
        Some(Duration::from_secs(10)),
        Some(Duration::from_secs(1)),
        Some(Duration::from_secs(2)),
        None,
        Some(Duration::from_secs(3)),
        None,
    ];
    for (i, dl) in deadlines.iter().enumerate() {
        let mut spec = JobSpec::new(format!("burst-{i}"), small_cfg(200 + i as u64, 1_500), 8);
        if let Some(d) = dl {
            spec = spec.with_deadline(*d);
        }
        burst.submit(spec);
    }
    let burst_report = burst.run();
    let shed: Vec<&str> = burst_report
        .jobs
        .iter()
        .filter(|j| j.state == JobState::Shed)
        .map(|j| j.name.as_str())
        .collect();
    println!(
        "  overload burst: {} submitted, {} shed ({})",
        burst_report.jobs.len(),
        shed.len(),
        shed.join(", ")
    );
    gate(
        burst_report.shed_jobs == 3,
        &format!("expected 3 shed jobs, got {}", burst_report.shed_jobs),
    )?;
    gate(
        burst.ledger().count(FaultKind::Shed) as u64 == burst_report.shed_jobs,
        "every shed must be ledgered, one event per eviction",
    )?;
    for j in &burst_report.jobs {
        if j.state == JobState::Shed {
            gate(
                burst
                    .ledger()
                    .events_for_job(j.id.0)
                    .iter()
                    .any(|e| e.kind == FaultKind::Shed),
                &format!("shed job {} has no ledger entry", j.name),
            )?;
        } else {
            gate(
                j.state == JobState::Done,
                &format!("survivor {} ended {}", j.name, j.state.name()),
            )?;
        }
    }

    // ---- Report ----------------------------------------------------------
    let json = Json::obj([
        ("bench", Json::s("jobs")),
        ("particles_short", Json::Int(short_n as i64)),
        ("particles_long", Json::Int(long_n as i64)),
        policy_json("srtf", &srtf_report),
        policy_json("fifo", &fifo_report),
        (
            "makespan_speedup",
            Json::Num(ms(fifo_report.makespan) / ms(srtf_report.makespan)),
        ),
        (
            "cache",
            Json::obj([
                ("hits", Json::Int(hits as i64)),
                ("misses", Json::Int(misses as i64)),
            ]),
        ),
        (
            "burst",
            Json::obj([
                ("submitted", Json::Int(burst_report.jobs.len() as i64)),
                ("shed", Json::Int(burst_report.shed_jobs as i64)),
                (
                    "shed_jobs",
                    Json::Arr(shed.iter().map(|n| Json::s(*n)).collect()),
                ),
            ]),
        ),
    ]);
    let path = results_path("BENCH_jobs.json");
    write_json_file(&path, &json).map_err(|e| PicError::Io(e.to_string()))?;
    println!("wrote {}", path.display());
    println!("job runtime gate: PASS");
    Ok(())
}

fn main() -> std::process::ExitCode {
    pic_bench::exit_on_error(run)
}
