//! # pic-bench — experiment harnesses for every table and figure
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index); this library holds what they share:
//!
//! * [`cli`] — a tiny `--flag value` parser (no external dependency);
//! * [`harness`] — a minimal Criterion-compatible benchmark harness (the
//!   `benches/` targets run on it, no external dependency);
//! * [`table`] — fixed-width table printing;
//! * [`workloads`] — the standard experiment configurations, scaled-down
//!   versions of the paper's Table I test case;
//! * [`membench`] — the STREAM kernels (McCalpin) used as the bandwidth
//!   ceiling in Fig. 8;
//! * [`report`] — machine-readable (JSON) benchmark output: a registry the
//!   harness feeds and a dependency-free JSON writer;
//! * [`literature`] — published comparison constants (Decyk & Singh 2014,
//!   Table V), quoted rather than re-measured, exactly as the paper does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod harness;
pub mod literature;
pub mod membench;
pub mod report;
pub mod table;
pub mod workloads;

/// Shared `main` shim for the figure/table binaries: run `body` and turn a
/// [`pic_core::PicError`] (e.g. a non-power-of-two `--grid`) into a
/// one-line diagnostic plus a failing exit code instead of a panic
/// backtrace.
pub fn exit_on_error(
    body: impl FnOnce() -> Result<(), pic_core::PicError>,
) -> std::process::ExitCode {
    match body() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Seconds → nanoseconds-per-particle-per-iteration (the unit of Table V).
pub fn ns_per_particle(seconds: f64, particles: usize, iterations: usize) -> f64 {
    seconds * 1e9 / (particles as f64 * iterations as f64)
}

/// Particles·iterations per second in millions (the unit of Table VI).
pub fn mp_per_s(particles: usize, iterations: usize, seconds: f64) -> f64 {
    particles as f64 * iterations as f64 / seconds / 1e6
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_conversions() {
        // 1 s for 1M particles × 100 iters = 10 ns per particle-iter.
        assert!((super::ns_per_particle(1.0, 1_000_000, 100) - 10.0).abs() < 1e-12);
        assert!((super::mp_per_s(1_000_000, 100, 1.0) - 100.0).abs() < 1e-12);
    }
}
