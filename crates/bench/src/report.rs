//! Machine-readable benchmark output.
//!
//! The text tables the binaries print are for humans; regression tracking
//! wants something a script can diff. This module provides the two pieces:
//!
//! * a process-global registry of [`BenchRecord`]s that the harness in
//!   [`crate::harness`] feeds as each benchmark finishes, so a bench
//!   binary's `main` can collect everything it ran with [`take_records`];
//! * a tiny dependency-free JSON value type ([`Json`]) plus
//!   [`write_json_file`], enough to emit well-formed JSON without pulling
//!   in serde (the workspace is offline and carries no external crates).

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// One finished benchmark: identity plus the timing statistics the harness
/// computed over its samples.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name (first path component of the printed id).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median seconds per iteration.
    pub median_secs: f64,
    /// Fastest sample, seconds per iteration.
    pub min_secs: f64,
    /// Slowest sample, seconds per iteration.
    pub max_secs: f64,
    /// Elements per iteration, when the group declared
    /// [`crate::harness::Throughput::Elements`].
    pub elements: Option<u64>,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Append a record to the process-global registry. Called by the harness;
/// bench code normally never needs this directly.
pub fn record(r: BenchRecord) {
    RECORDS.lock().unwrap_or_else(|e| e.into_inner()).push(r);
}

/// Drain the registry, returning every record since the last call (or
/// process start), in completion order.
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut *RECORDS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// A JSON value. Construct with the shorthand helpers and serialize with
/// [`Json::to_string_pretty`] or [`write_json_file`].
#[derive(Debug, Clone)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// An integer, kept separate so counts print without a decimal point.
    Int(i64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// String value.
    pub fn s(v: impl Into<String>) -> Self {
        Json::Str(v.into())
    }

    /// Object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) if !v.is_finite() => out.push_str("null"),
            Json::Num(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Path of `file` inside the workspace `results/` directory, anchored to
/// this crate's manifest so output lands in the same place whether the
/// binary runs under `cargo bench` (package dir) or `cargo run` (caller's
/// working directory).
pub fn results_path(file: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(file)
}

/// Write `json` to `path`, creating parent directories as needed.
pub fn write_json_file(path: &Path, json: &Json) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, json.to_string_pretty())
}

/// Convert a slice of records into the standard JSON result array: one
/// object per record with seconds and (when elements are known) derived
/// nanoseconds per element.
pub fn records_to_json(records: &[BenchRecord]) -> Json {
    Json::Arr(
        records
            .iter()
            .map(|r| {
                let ns = r
                    .elements
                    .map(|n| Json::Num(r.median_secs * 1e9 / n as f64))
                    .unwrap_or(Json::Null);
                Json::obj([
                    ("group", Json::s(&r.group)),
                    ("id", Json::s(&r.id)),
                    ("median_s", Json::Num(r.median_secs)),
                    ("min_s", Json::Num(r.min_secs)),
                    ("max_s", Json::Num(r.max_secs)),
                    ("ns_per_elem", ns),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shapes() {
        let j = Json::obj([
            ("name", Json::s("a\"b\\c\nd")),
            ("n", Json::Int(42)),
            ("x", Json::Num(1.5)),
            ("bad", Json::Num(f64::NAN)),
            ("flag", Json::Bool(true)),
            ("empty", Json::Arr(vec![])),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        let s = j.to_string_pretty();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""), "{s}");
        assert!(s.contains("\"n\": 42"), "{s}");
        assert!(s.contains("\"x\": 1.5"), "{s}");
        assert!(s.contains("\"bad\": null"), "{s}");
        assert!(s.contains("\"empty\": []"), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn registry_roundtrip() {
        // Drain anything other tests left behind, then check our own.
        let _ = take_records();
        record(BenchRecord {
            group: "g".into(),
            id: "i".into(),
            median_secs: 2e-9,
            min_secs: 1e-9,
            max_secs: 3e-9,
            elements: Some(2),
        });
        let got = take_records();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].group, "g");
        let arr = records_to_json(&got);
        let s = arr.to_string_pretty();
        assert!(s.contains("\"ns_per_elem\": 1"), "{s}");
        assert!(take_records().is_empty());
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("pic_bench_report_test");
        let path = dir.join("nested").join("out.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_json_file(&path, &Json::obj([("ok", Json::Bool(true))])).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("\"ok\": true"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
