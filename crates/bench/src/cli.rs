//! Minimal `--flag value` command-line parsing for the harness binaries.

use std::collections::HashMap;

/// Parsed arguments: `--key value` pairs plus bare `--switch` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an iterator of tokens.
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        out.values.insert(key.to_string(), iter.next().unwrap());
                    }
                    _ => out.switches.push(key.to_string()),
                }
            }
        }
        out
    }

    /// A `--key value` as a parsed type, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// True if `--key` was passed as a bare switch.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = args("--particles 1000 --quick --grid 64");
        assert_eq!(a.get("particles", 0usize), 1000);
        assert_eq!(a.get("grid", 0usize), 64);
        assert!(a.has("quick"));
        assert!(!a.has("slow"));
        assert_eq!(a.get("missing", 7u32), 7);
    }

    #[test]
    fn bad_values_fall_back_to_default() {
        let a = args("--particles lots");
        // "lots" is consumed as the value but fails to parse as usize.
        assert_eq!(a.get("particles", 42usize), 42);
    }

    #[test]
    fn float_values() {
        let a = args("--dt 0.05");
        assert!((a.get("dt", 0.0f64) - 0.05).abs() < 1e-15);
    }
}
