//! Published comparison constants quoted by the paper.
//!
//! Table V compares against Decyk & Singh, *Particle-in-Cell algorithms for
//! emerging computer architectures*, Comput. Phys. Commun. 185 (2014): their
//! per-loop nanoseconds-per-particle-per-iteration on a single Nehalem core.
//! The paper quotes these numbers rather than rerunning that code, and so do
//! we.

/// One column of Table V: ns per particle per iteration, by loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableVColumn {
    /// Label of the machine/code.
    pub label: &'static str,
    /// The combined update-velocities + update-positions time (“Push”).
    pub push_ns: f64,
    /// Charge accumulation.
    pub accumulate_ns: f64,
    /// Their partial “reorder” step (not a full sort); `None` where a full
    /// sort is used instead.
    pub reorder_ns: Option<f64>,
    /// Full counting sort; `None` for the reorder-based code.
    pub sorting_ns: Option<f64>,
}

impl TableVColumn {
    /// Total ns per particle per iteration.
    pub fn total(&self) -> f64 {
        self.push_ns
            + self.accumulate_ns
            + self.reorder_ns.unwrap_or(0.0)
            + self.sorting_ns.unwrap_or(0.0)
    }
}

/// Decyk & Singh 2014 on Nehalem (paper's Table V, first column).
pub const DECYK_SINGH_NEHALEM: TableVColumn = TableVColumn {
    label: "Decyk & Singh (Nehalem)",
    push_ns: 19.9,
    accumulate_ns: 9.0,
    reorder_ns: Some(0.3),
    sorting_ns: None,
};

/// The paper's own measurements on Sandy Bridge (Table V, second column).
pub const BARSAMIAN_SANDY_BRIDGE: TableVColumn = TableVColumn {
    label: "Paper (Sandy Bridge)",
    push_ns: 15.6,
    accumulate_ns: 4.3,
    reorder_ns: None,
    sorting_ns: Some(1.9),
};

/// The paper's own measurements on Haswell (Table V, third column).
pub const BARSAMIAN_HASWELL: TableVColumn = TableVColumn {
    label: "Paper (Haswell)",
    push_ns: 9.1,
    accumulate_ns: 2.6,
    reorder_ns: None,
    sorting_ns: Some(2.0),
};

/// Paper Table II reference values: millions of cache misses per iteration
/// (update-velocities + accumulate loops, Table I test case, 50 M particles).
pub struct TableIIRow {
    /// Ordering label.
    pub ordering: &'static str,
    /// L1 misses, millions.
    pub l1: f64,
    /// L2 misses, millions.
    pub l2: f64,
    /// L3 misses, millions.
    pub l3: f64,
}

/// All four rows of the paper's Table II.
// The L4D row's L3 miss count happens to be 3.14 million — measured data
// from the paper, not an approximation of π.
#[allow(clippy::approx_constant)]
pub const TABLE_II_PAPER: [TableIIRow; 4] = [
    TableIIRow {
        ordering: "Row-major",
        l1: 95.4,
        l2: 43.3,
        l3: 4.94,
    },
    TableIIRow {
        ordering: "L4D",
        l1: 92.0,
        l2: 27.8,
        l3: 3.14,
    },
    TableIIRow {
        ordering: "Morton",
        l1: 91.1,
        l2: 27.0,
        l3: 3.20,
    },
    TableIIRow {
        ordering: "Hilbert",
        l1: 90.9,
        l2: 27.1,
        l3: 3.29,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        assert!((DECYK_SINGH_NEHALEM.total() - 29.2).abs() < 1e-9);
        assert!((BARSAMIAN_SANDY_BRIDGE.total() - 21.8).abs() < 1e-9);
        assert!((BARSAMIAN_HASWELL.total() - 13.7).abs() < 1e-9);
    }

    #[test]
    fn table2_shows_36_percent_l2_improvement() {
        let rm = &TABLE_II_PAPER[0];
        let mo = &TABLE_II_PAPER[2];
        let improvement = 1.0 - mo.l2 / rm.l2;
        assert!((improvement - 0.376).abs() < 0.01);
    }
}
