//! Criterion benchmarks for the cache simulator itself — probe throughput
//! on hit-heavy, miss-heavy, and PIC-trace-shaped access streams (the
//! simulator's speed bounds how large a Table II replay is practical).

use cachesim::{AccessKind, Hierarchy, HierarchyConfig};
use pic_bench::harness::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim_probe");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));

    g.bench_function("l1_hits", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::haswell());
        b.iter(|| {
            for i in 0..n {
                h.access(black_box((i % 512) * 8), 8, AccessKind::Read);
            }
        })
    });
    g.bench_function("streaming", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::haswell());
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..n {
                h.access(black_box(base + i * 8), 8, AccessKind::Read);
            }
            base += n * 8;
        })
    });
    g.bench_function("random_l3_resident", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::haswell());
        let mut s = 0x9e3779b9u64;
        b.iter(|| {
            for _ in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                h.access(black_box((s % (1 << 24)) & !7), 8, AccessKind::Read);
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_probe
}

/// Short-run Criterion config so `cargo bench --workspace` completes in
/// minutes on one core (raise for precision runs).
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_main!(benches);
