//! Criterion benchmarks for the particle-loop kernels — the micro version
//! of Tables III/IV: each optimization variant of each loop, on a sorted
//! particle population, with the lane-blocked SIMD kernels benchmarked
//! against their scalar twins.
//!
//! Besides the human-readable report, `main` writes
//! `results/BENCH_kernels.json` with per-kernel ns/particle so regressions
//! can be tracked by script. Set `PIC_BENCH_PARTICLES` to override the
//! default 1 M particle population.

use pic_bench::harness::{black_box, criterion_group, Criterion, Throughput};
use pic_bench::report::{records_to_json, results_path, take_records, write_json_file, Json};
use pic_core::fields::{Field2D, RedundantE, RedundantRho};
use pic_core::grid::Grid2D;
use pic_core::kernels::{accumulate, deposit, position, simd, velocity};
use pic_core::particles::{initialize, InitialDistribution, ParticlesSoA};
use pic_core::sort::sort_out_of_place;
use sfc::{CellLayout, Morton, RowMajor};

const SIDE: usize = 128;

/// Particle count: `PIC_BENCH_PARTICLES` or 1 M (the scale the lane-vs-
/// scalar acceptance numbers are quoted at).
fn particles() -> usize {
    std::env::var("PIC_BENCH_PARTICLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

fn setup(layout: &dyn CellLayout) -> ParticlesSoA {
    setup_n(layout, particles())
}

fn setup_n(layout: &dyn CellLayout, n: usize) -> ParticlesSoA {
    let grid = Grid2D::new(SIDE, SIDE, 1.0, 1.0).unwrap();
    let mut p = initialize(&grid, layout, InitialDistribution::Uniform, n, 42);
    // Grid-unit velocities ~ half a cell per step.
    for v in p.vx.iter_mut().chain(p.vy.iter_mut()) {
        *v *= 0.5;
    }
    let mut scratch = ParticlesSoA::zeroed(0);
    sort_out_of_place(&mut p, &mut scratch, layout.ncells());
    p
}

fn field(layout: &dyn CellLayout) -> (Field2D, RedundantE) {
    let grid = Grid2D::new(SIDE, SIDE, 1.0, 1.0).unwrap();
    let mut f = Field2D::new(&grid);
    for i in 0..f.ex.len() {
        f.ex[i] = ((i * 37) % 101) as f64 * 0.001;
        f.ey[i] = ((i * 53) % 97) as f64 * -0.001;
    }
    let mut e8 = RedundantE::new(layout);
    e8.fill_from(&f, layout, 1.0, 1.0);
    (f, e8)
}

fn bench_update_velocities(c: &mut Criterion) {
    let layout = Morton::new(SIDE, SIDE).unwrap();
    let p = setup(&layout);
    let (f, e8) = field(&layout);
    let mut g = c.benchmark_group("update_velocities");
    g.throughput(Throughput::Elements(p.len() as u64));

    let mut vx = p.vx.clone();
    let mut vy = p.vy.clone();
    g.bench_function("redundant_hoisted", |b| {
        b.iter(|| {
            velocity::update_velocities_redundant_hoisted(
                black_box(&p.icell),
                &p.dx,
                &p.dy,
                &mut vx,
                &mut vy,
                &e8.e8,
            );
            black_box(vx[0])
        })
    });
    g.bench_function("redundant_hoisted_lanes", |b| {
        b.iter(|| {
            simd::update_velocities_redundant_hoisted_lanes(
                black_box(&p.icell),
                &p.dx,
                &p.dy,
                &mut vx,
                &mut vy,
                &e8.e8,
            );
            black_box(vx[0])
        })
    });
    g.bench_function("redundant_coeff", |b| {
        b.iter(|| {
            velocity::update_velocities_redundant(
                black_box(&p.icell),
                &p.dx,
                &p.dy,
                &mut vx,
                &mut vy,
                &e8.e8,
                0.5,
                0.5,
            );
            black_box(vx[0])
        })
    });
    g.bench_function("redundant_coeff_lanes", |b| {
        b.iter(|| {
            simd::update_velocities_redundant_lanes(
                black_box(&p.icell),
                &p.dx,
                &p.dy,
                &mut vx,
                &mut vy,
                &e8.e8,
                0.5,
                0.5,
            );
            black_box(vx[0])
        })
    });
    g.bench_function("standard_gather", |b| {
        b.iter(|| {
            velocity::update_velocities_standard(
                black_box(&p.ix),
                &p.iy,
                &p.dx,
                &p.dy,
                &mut vx,
                &mut vy,
                &f,
                0.5,
                0.5,
            );
            black_box(vx[0])
        })
    });
    g.finish();
}

fn bench_update_positions(c: &mut Criterion) {
    let rm = RowMajor::new(SIDE, SIDE).unwrap();
    let mo = Morton::new(SIDE, SIDE).unwrap();
    let base = setup(&rm);
    let mut g = c.benchmark_group("update_positions");
    g.throughput(Throughput::Elements(base.len() as u64));

    g.bench_function("naive_if", |b| {
        let mut p = base.clone();
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        b.iter(|| {
            position::update_positions_naive_if(
                &mut p.icell,
                &mut p.ix,
                &mut p.iy,
                &mut p.dx,
                &mut p.dy,
                &vx,
                &vy,
                SIDE,
                SIDE,
                1.0,
            );
            black_box(p.icell[0])
        })
    });
    g.bench_function("modulo_int", |b| {
        let mut p = base.clone();
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        b.iter(|| {
            position::update_positions_modulo(
                &mut p.icell,
                &mut p.ix,
                &mut p.iy,
                &mut p.dx,
                &mut p.dy,
                &vx,
                &vy,
                SIDE,
                SIDE,
                1.0,
            );
            black_box(p.icell[0])
        })
    });
    g.bench_function("branchless", |b| {
        let mut p = base.clone();
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        b.iter(|| {
            position::update_positions_branchless(
                &mut p.icell,
                &mut p.ix,
                &mut p.iy,
                &mut p.dx,
                &mut p.dy,
                &vx,
                &vy,
                SIDE,
                SIDE,
                1.0,
            );
            black_box(p.icell[0])
        })
    });
    g.bench_function("branchless_lanes", |b| {
        let mut p = base.clone();
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        b.iter(|| {
            simd::update_positions_branchless_lanes(
                &mut p.icell,
                &mut p.ix,
                &mut p.iy,
                &mut p.dx,
                &mut p.dy,
                &vx,
                &vy,
                SIDE,
                SIDE,
                1.0,
            );
            black_box(p.icell[0])
        })
    });
    g.bench_function("branchless_morton", |b| {
        let mut p = base.clone();
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        b.iter(|| {
            position::update_positions_branchless_layout(
                &mut p.icell,
                &mut p.ix,
                &mut p.iy,
                &mut p.dx,
                &mut p.dy,
                &vx,
                &vy,
                &mo,
                1.0,
            );
            black_box(p.icell[0])
        })
    });
    g.bench_function("branchless_morton_lanes", |b| {
        let mut p = base.clone();
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        b.iter(|| {
            simd::update_positions_branchless_layout_lanes(
                &mut p.icell,
                &mut p.ix,
                &mut p.iy,
                &mut p.dx,
                &mut p.dy,
                &vx,
                &vy,
                &mo,
                1.0,
            );
            black_box(p.icell[0])
        })
    });
    g.finish();
}

fn bench_accumulate(c: &mut Criterion) {
    let layout = Morton::new(SIDE, SIDE).unwrap();
    let p = setup(&layout);
    let mut g = c.benchmark_group("accumulate");
    g.throughput(Throughput::Elements(p.len() as u64));

    g.bench_function("redundant", |b| {
        let mut acc = RedundantRho::new(&layout);
        b.iter(|| {
            accumulate::accumulate_redundant(black_box(&p.icell), &p.dx, &p.dy, &mut acc.rho4, 1.0);
            black_box(acc.rho4[0][0])
        })
    });
    g.bench_function("redundant_lanes", |b| {
        let mut acc = RedundantRho::new(&layout);
        b.iter(|| {
            simd::accumulate_redundant_lanes(black_box(&p.icell), &p.dx, &p.dy, &mut acc.rho4, 1.0);
            black_box(acc.rho4[0][0])
        })
    });
    g.bench_function("lane_reduce", |b| {
        let mut acc = RedundantRho::new(&layout);
        b.iter(|| {
            deposit::accumulate_lane_reduce(black_box(&p.icell), &p.dx, &p.dy, &mut acc.rho4, 1.0);
            black_box(acc.rho4[0][0])
        })
    });
    g.bench_function("sorted_block", |b| {
        let mut acc = RedundantRho::new(&layout);
        b.iter(|| {
            deposit::accumulate_sorted_block(black_box(&p.icell), &p.dx, &p.dy, &mut acc.rho4, 1.0);
            black_box(acc.rho4[0][0])
        })
    });
    g.bench_function("standard_scatter", |b| {
        let mut rho = vec![0.0; SIDE * SIDE];
        b.iter(|| {
            accumulate::accumulate_standard(
                black_box(&p.ix),
                &p.iy,
                &p.dx,
                &p.dy,
                &mut rho,
                SIDE,
                SIDE,
                1.0,
            );
            black_box(rho[0])
        })
    });
    g.finish();
}

/// Particle-count sweep over the deposit kernels, so the ns/elem crossover
/// between `LaneReduce` and `SortedBlock` (run lengths grow with particles
/// per cell) is visible in `results/BENCH_kernels.json`.
fn bench_accumulate_sweep(c: &mut Criterion) {
    let layout = Morton::new(SIDE, SIDE).unwrap();
    for (label, n) in [("100k", 100_000usize), ("1m", 1_000_000), ("4m", 4_000_000)] {
        let p = setup_n(&layout, n);
        let mut g = c.benchmark_group("accumulate_sweep");
        g.throughput(Throughput::Elements(n as u64));
        type Named = (&'static str, deposit::DepositFn);
        let kernels: [Named; 3] = [
            ("redundant", accumulate::accumulate_redundant),
            ("lane_reduce", deposit::accumulate_lane_reduce),
            ("sorted_block", deposit::accumulate_sorted_block),
        ];
        for (name, kernel) in kernels {
            let mut acc = RedundantRho::new(&layout);
            g.bench_function(format!("{name}_{label}"), |b| {
                b.iter(|| {
                    kernel(black_box(&p.icell), &p.dx, &p.dy, &mut acc.rho4, 1.0);
                    black_box(acc.rho4[0][0])
                })
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_update_velocities, bench_update_positions, bench_accumulate,
        bench_accumulate_sweep
}

/// Short-run Criterion config so `cargo bench --workspace` completes in
/// minutes on one core (raise for precision runs).
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

/// Per-record metadata the JSON consumers want: which cell layout the bench
/// ran on and whether it used the scalar or the lane-blocked kernel path.
fn annotate(group: &str, id: &str) -> (&'static str, &'static str) {
    let layout = match group {
        "update_positions" if !id.contains("morton") => "row_major",
        _ => "morton",
    };
    let path = if id.contains("lane_reduce") {
        "lane_reduce"
    } else if id.contains("sorted_block") {
        "sorted_block"
    } else if id.ends_with("_lanes") {
        "lanes"
    } else {
        "scalar"
    };
    (layout, path)
}

fn main() {
    benches();
    let records = take_records();
    let results = match records_to_json(&records) {
        Json::Arr(items) => Json::Arr(
            items
                .into_iter()
                .zip(&records)
                .map(|(j, r)| {
                    let (layout, path) = annotate(&r.group, &r.id);
                    match j {
                        Json::Obj(mut pairs) => {
                            pairs.push(("layout".into(), Json::s(layout)));
                            pairs.push(("path".into(), Json::s(path)));
                            Json::Obj(pairs)
                        }
                        other => other,
                    }
                })
                .collect(),
        ),
        other => other,
    };
    let doc = Json::obj([
        ("bench", Json::s("bench_kernels")),
        ("particles", Json::Int(particles() as i64)),
        ("grid", Json::Int(SIDE as i64)),
        ("threads", Json::Int(1)),
        ("lanes", Json::Int(simd::LANES as i64)),
        ("results", results),
    ]);
    let path = results_path("BENCH_kernels.json");
    write_json_file(&path, &doc).expect("write BENCH_kernels.json");
    println!("\nwrote {}", path.display());
}
