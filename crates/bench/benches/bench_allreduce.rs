//! Criterion benchmarks for the `minimpi` collectives: flat vs tree
//! allreduce at the paper's ρ payload (128×128 doubles) across rank counts.

use minimpi::World;
use pic_bench::harness::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_allreduce(c: &mut Criterion) {
    let payload = 128 * 128; // the paper's rho array
    let mut g = c.benchmark_group("allreduce_128x128");
    g.sample_size(10);

    for ranks in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("flat", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let r = World::run(ranks, |comm| {
                    let mut v = vec![comm.rank() as f64; payload];
                    for _ in 0..10 {
                        comm.allreduce_sum(&mut v);
                    }
                    v[0]
                });
                black_box(r[0])
            })
        });
        g.bench_with_input(BenchmarkId::new("tree", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let r = World::run(ranks, |comm| {
                    let mut v = vec![comm.rank() as f64; payload];
                    for step in 0..10u64 {
                        comm.allreduce_sum_tree(&mut v, step * 1000);
                    }
                    v[0]
                });
                black_box(r[0])
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_allreduce
}

/// Short-run Criterion config so `cargo bench --workspace` completes in
/// minutes on one core (raise for precision runs).
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_main!(benches);
