//! Criterion version of Table IV: one benchmark per optimization rung,
//! each timing a full PIC step at a fixed (small) scale so regressions in
//! any single rung show up in CI-style runs.

use pic_bench::harness::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use pic_bench::workloads::table4_ladder;
use pic_core::sim::Simulation;

fn bench_ladder(c: &mut Criterion) {
    let particles = 100_000;
    let grid = 64;
    let mut g = c.benchmark_group("table4_ladder_step");
    g.throughput(Throughput::Elements(particles as u64));
    g.sample_size(10);

    for (label, cfg) in table4_ladder(particles, grid) {
        let mut sim = Simulation::new(cfg).expect("valid config");
        sim.run(2); // warm
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                sim.step();
                black_box(sim.steps())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_ladder
}

/// Short-run Criterion config so `cargo bench --workspace` completes in
/// minutes on one core (raise for precision runs).
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_main!(benches);
