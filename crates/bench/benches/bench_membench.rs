//! Criterion wrapper around the STREAM kernels (Fig. 8's bandwidth ceiling).

use pic_bench::harness::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use pic_bench::membench;

fn bench_stream(c: &mut Criterion) {
    let n = 4_000_000usize;
    let mut g = c.benchmark_group("stream");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.throughput(Throughput::Bytes((3 * 8 * n) as u64));
        g.bench_with_input(
            BenchmarkId::new("triad", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(membench::triad(n, 1, threads).best_bytes_per_s)),
        );
        g.throughput(Throughput::Bytes((2 * 8 * n) as u64));
        g.bench_with_input(
            BenchmarkId::new("copy", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(membench::copy(n, 1, threads).best_bytes_per_s)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_stream
}

/// Short-run Criterion config so `cargo bench --workspace` completes in
/// minutes on one core (raise for precision runs).
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_main!(benches);
