//! Criterion micro-benchmarks for the space-filling-curve encoders —
//! the per-particle `(ix, iy) → icell` cost that Table III charges to the
//! update-positions loop, including the paper's arithmetic-vs-LUT Morton
//! comparison (§IV-B: the LUT indirection blocks vectorization).

use pic_bench::harness::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use sfc::{CellLayout, Hilbert, Morton, MortonLut, RowMajor, L4D};

fn coords(n: usize, side: usize) -> (Vec<usize>, Vec<usize>) {
    let xs = (0..n).map(|i| (i * 7919) % side).collect();
    let ys = (0..n).map(|i| (i * 104729) % side).collect();
    (xs, ys)
}

fn bench_encode(c: &mut Criterion) {
    let side = 128;
    let n = 8192;
    let (xs, ys) = coords(n, side);
    let mut out = vec![0usize; n];

    let mut g = c.benchmark_group("sfc_encode_batch");
    g.throughput(Throughput::Elements(n as u64));

    let layouts: Vec<(&str, Box<dyn CellLayout>)> = vec![
        ("row_major", Box::new(RowMajor::new(side, side).unwrap())),
        ("l4d_8", Box::new(L4D::new(side, side, 8).unwrap())),
        ("morton", Box::new(Morton::new(side, side).unwrap())),
        ("morton_lut", Box::new(MortonLut::new(side, side).unwrap())),
        ("hilbert", Box::new(Hilbert::new(side, side).unwrap())),
    ];
    for (name, layout) in &layouts {
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                layout.encode_batch(black_box(&xs), black_box(&ys), &mut out);
                black_box(out[0])
            })
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let side = 128;
    let n = 8192;
    let cells: Vec<usize> = (0..n).map(|i| (i * 7919) % (side * side)).collect();

    let mut g = c.benchmark_group("sfc_decode");
    g.throughput(Throughput::Elements(n as u64));
    let layouts: Vec<(&str, Box<dyn CellLayout>)> = vec![
        ("row_major", Box::new(RowMajor::new(side, side).unwrap())),
        ("l4d_8", Box::new(L4D::new(side, side, 8).unwrap())),
        ("morton", Box::new(Morton::new(side, side).unwrap())),
        ("hilbert", Box::new(Hilbert::new(side, side).unwrap())),
    ];
    for (name, layout) in &layouts {
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for &cell in &cells {
                    let (x, y) = layout.decode(black_box(cell));
                    acc ^= x ^ y;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_encode, bench_decode
}

/// Short-run Criterion config so `cargo bench --workspace` completes in
/// minutes on one core (raise for precision runs).
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_main!(benches);
