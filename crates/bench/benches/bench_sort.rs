//! Criterion benchmarks for the counting sorts — the paper's §V-B1
//! in-place vs out-of-place comparison (out-of-place ≈ 2× faster) and the
//! parallel cell-partitioned variant.

use pic_bench::harness::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use pic_core::particles::ParticlesSoA;
use pic_core::sort::{par_sort_out_of_place, sort_in_place, sort_out_of_place};

const NCELLS: usize = 128 * 128;

fn randomized(n: usize) -> ParticlesSoA {
    let mut p = ParticlesSoA::zeroed(n);
    let mut s = 0x12345u64;
    for i in 0..n {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        p.icell[i] = (s % NCELLS as u64) as u32;
        p.vx[i] = i as f64;
    }
    p
}

fn bench_sorts(c: &mut Criterion) {
    let n = 500_000;
    let base = randomized(n);
    let mut g = c.benchmark_group("counting_sort");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);

    g.bench_function("out_of_place", |b| {
        b.iter_with_setup(
            || (base.clone(), ParticlesSoA::zeroed(n)),
            |(mut p, mut scratch)| {
                sort_out_of_place(&mut p, &mut scratch, NCELLS);
                black_box(p.icell[0])
            },
        )
    });
    g.bench_function("in_place", |b| {
        b.iter_with_setup(
            || base.clone(),
            |mut p| {
                sort_in_place(&mut p, NCELLS);
                black_box(p.icell[0])
            },
        )
    });
    for tasks in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("parallel_out_of_place", tasks),
            &tasks,
            |b, &tasks| {
                b.iter_with_setup(
                    || (base.clone(), ParticlesSoA::zeroed(n)),
                    |(mut p, mut scratch)| {
                        par_sort_out_of_place(&mut p, &mut scratch, NCELLS, tasks);
                        black_box(p.icell[0])
                    },
                )
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_sorts
}

/// Short-run Criterion config so `cargo bench --workspace` completes in
/// minutes on one core (raise for precision runs).
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_main!(benches);
