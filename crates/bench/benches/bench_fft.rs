//! Criterion benchmarks for the spectral substrate: 1-D/2-D FFT and the
//! full Poisson solve at the paper's grid sizes (128², 256²).

use pic_bench::harness::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use spectral::fft::{Fft2Plan, FftPlan};
use spectral::poisson::PoissonSolver2D;
use spectral::Complex64;

fn bench_fft1d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_1d");
    for n in [128usize, 1024, 16384] {
        let plan = FftPlan::new(n).unwrap();
        let data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                plan.forward(&mut d);
                black_box(d[0])
            })
        });
    }
    g.finish();
}

fn bench_fft2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_2d");
    for n in [64usize, 128, 256] {
        let plan = Fft2Plan::new(n, n).unwrap();
        let data: Vec<Complex64> = (0..n * n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), 0.0))
            .collect();
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                plan.forward(&mut d);
                black_box(d[0])
            })
        });
    }
    g.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let mut g = c.benchmark_group("poisson_solve_e");
    for n in [128usize, 256] {
        let solver = PoissonSolver2D::new(n, n, 1.0, 1.0).unwrap();
        let rho: Vec<f64> = (0..n * n).map(|i| ((i * 31) % 101) as f64 * 0.01).collect();
        let mut ex = vec![0.0; n * n];
        let mut ey = vec![0.0; n * n];
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                solver.solve_e(black_box(&rho), &mut ex, &mut ey);
                black_box(ex[0])
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_fft1d, bench_fft2d, bench_poisson
}

/// Short-run Criterion config so `cargo bench --workspace` completes in
/// minutes on one core (raise for precision runs).
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_main!(benches);
