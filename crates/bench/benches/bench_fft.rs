//! Criterion benchmarks for the spectral substrate: 1-D/2-D FFT and the
//! full Poisson solve at the paper's grid sizes (128², 256²).

use pic_bench::harness::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use pic_core::pool::ThreadPool;
use spectral::fft::{transpose_tiled, Fft2Plan, FftPlan, TRANSPOSE_TILE};
use spectral::poisson::PoissonSolver2D;
use spectral::Complex64;

fn bench_fft1d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_1d");
    for n in [128usize, 1024, 16384] {
        let plan = FftPlan::new(n).unwrap();
        let data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                plan.forward(&mut d);
                black_box(d[0])
            })
        });
    }
    g.finish();
}

fn bench_fft2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_2d");
    for n in [64usize, 128, 256] {
        let plan = Fft2Plan::new(n, n).unwrap();
        let data: Vec<Complex64> = (0..n * n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), 0.0))
            .collect();
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                plan.forward(&mut d);
                black_box(d[0])
            })
        });
    }
    g.finish();
}

fn bench_fft2d_par(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_2d_par");
    for n in [128usize, 256, 512] {
        let plan = Fft2Plan::new(n, n).unwrap();
        let data: Vec<Complex64> = (0..n * n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), 0.0))
            .collect();
        g.throughput(Throughput::Elements((n * n) as u64));
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads);
            let mut tbuf = vec![Complex64::ZERO; n * n];
            g.bench_with_input(
                BenchmarkId::new(format!("forward_{threads}t"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut d = data.clone();
                        plan.forward_par(&mut d, &mut tbuf, &pool);
                        black_box(d[0])
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut g = c.benchmark_group("transpose");
    for n in [256usize, 512, 1024] {
        let src: Vec<Complex64> = (0..n * n)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let mut dst = vec![Complex64::ZERO; n * n];
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                transpose_tiled(black_box(&src), &mut dst, n, n, 1);
                black_box(dst[0])
            })
        });
        g.bench_with_input(BenchmarkId::new("tiled", n), &n, |b, _| {
            b.iter(|| {
                transpose_tiled(black_box(&src), &mut dst, n, n, TRANSPOSE_TILE);
                black_box(dst[0])
            })
        });
    }
    g.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let mut g = c.benchmark_group("poisson_solve_e");
    for n in [128usize, 256] {
        let solver = PoissonSolver2D::new(n, n, 1.0, 1.0).unwrap();
        let rho: Vec<f64> = (0..n * n).map(|i| ((i * 31) % 101) as f64 * 0.01).collect();
        let mut ex = vec![0.0; n * n];
        let mut ey = vec![0.0; n * n];
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                solver.solve_e(black_box(&rho), &mut ex, &mut ey);
                black_box(ex[0])
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_fft1d, bench_fft2d, bench_fft2d_par, bench_transpose, bench_poisson
}

/// Short-run Criterion config so `cargo bench --workspace` completes in
/// minutes on one core (raise for precision runs).
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_main!(benches);
