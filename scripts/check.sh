#!/usr/bin/env bash
# Offline repo gate: formatting, lints, build, and the full test suite.
# Everything runs without network access (the workspace has no external
# dependencies); run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> fault matrix (kill/drop/corrupt + elastic chaos scenarios, fixed seeds)"
cargo run --release -q -p pic-bench --bin fault_matrix

echo "==> elastic gate (weighted re-cut load bound, kill -> rejoin timing)"
cargo run --release -q -p pic-bench --bin bench_elastic

echo "==> job runtime gate (multi-tenant fault isolation, SRTF vs FIFO makespan)"
# The makespan comparison is wall-clock; retry once like perf_smoke.
cargo run --release -q -p pic-bench --bin bench_jobs || {
    echo "job runtime gate failed once; retrying"
    cargo run --release -q -p pic-bench --bin bench_jobs
}

echo "==> species gate (2d3v scenarios: conservation, cyclotron vs analytic, lane parity)"
# Physics gates are seeded and deterministic, but keep the standing
# one-retry policy of the other release-binary gates.
cargo run --release -q -p pic-bench --bin bench_species || {
    echo "species gate failed once; retrying"
    cargo run --release -q -p pic-bench --bin bench_species
}

echo "==> deposition parity matrix (DepositPath x layout x threads, release)"
cargo test -q --release --test parity_kernel_path

echo "==> kernel microbenches -> results/BENCH_kernels.json"
cargo bench -p pic-bench --bench bench_kernels

echo "==> perf smoke (lane-blocked vs scalar kernels + vectorized deposit)"
# A shared/loaded box can miss the speedup threshold on an unlucky run;
# retry once before declaring a regression.
cargo run --release -q -p pic-bench --bin perf_smoke || {
    echo "perf smoke failed once; retrying"
    cargo run --release -q -p pic-bench --bin perf_smoke
}

echo "==> adaptive gate (controller vs static grid, steady + drifting workloads)"
# Wall-clock gates on a shared box jitter; retry once like perf_smoke.
cargo run --release -q -p pic-bench --bin bench_adaptive || {
    echo "adaptive gate failed once; retrying"
    cargo run --release -q -p pic-bench --bin bench_adaptive
}

echo "==> scaling gate (replication vs decomposition comm volume)"
cargo run --release -q -p pic-bench --bin bench_scaling

echo "==> solver gate (serial vs pool-parallel vs slab-distributed solve)"
# Wall-clock gates on a shared box jitter; retry once like perf_smoke.
cargo run --release -q -p pic-bench --bin bench_solver || {
    echo "solver gate failed once; retrying"
    cargo run --release -q -p pic-bench --bin bench_solver
}

echo "All checks passed."
