//! Preemption-parity property test for the job runtime's core invariant:
//! for ANY checkpoint → destroy → resume schedule, the trajectory is
//! bit-identical (checkpoint bytes, not just diagnostics) to the
//! uninterrupted run — across particle layouts and shared-pool widths.
//! Schedules are drawn from a seeded RNG, so failures replay exactly.

use pic2d::pic_core::pool::ThreadPool;
use pic2d::pic_core::resilience::checkpoint::snapshot_hash;
use pic2d::pic_core::rng::Rng;
use pic2d::pic_core::sim::{ParticleLayout, PicConfig, Simulation};
use std::sync::Arc;

const STEPS: u64 = 24;
const SCHEDULES: u64 = 6;

fn cfg(layout: ParticleLayout, threads: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(2_500);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 4;
    cfg.particle_layout = layout;
    cfg.threads = threads;
    cfg.seed = 0xC0FFEE ^ threads as u64;
    cfg
}

#[test]
fn any_preempt_resume_schedule_is_bit_exact() {
    for layout in [ParticleLayout::Soa, ParticleLayout::Aos] {
        for threads in [1usize, 2, 4] {
            let c = cfg(layout, threads);
            // Reference: one uninterrupted run (its own pool).
            let mut reference = Simulation::new(c.clone()).unwrap();
            reference.run(STEPS as usize);
            let want = reference.checkpoint();

            // Interrupted runs share an external pool of the same width,
            // exactly as runtime tenants do (a width-1 shared pool must
            // match the pool-less sequential reference bit for bit).
            let pool = Arc::new(ThreadPool::new(threads));
            for schedule in 0..SCHEDULES {
                let mut rng = Rng::seed_from_u64(0x5eed ^ (schedule << 8) ^ threads as u64);
                let mut sim = Simulation::new_shared(c.clone(), pool.clone()).unwrap();
                let mut snap = sim.checkpoint();
                while (sim.steps() as u64) < STEPS {
                    let chunk = 1 + rng.below(6);
                    let until = (sim.steps() as u64 + chunk).min(STEPS);
                    while (sim.steps() as u64) < until {
                        sim.step();
                    }
                    snap = sim.checkpoint();
                    if rng.below(2) == 1 && (sim.steps() as u64) < STEPS {
                        // Preempt: destroy the live state, resume from bytes.
                        sim = Simulation::from_snapshot_shared(c.clone(), &snap, pool.clone())
                            .unwrap();
                    }
                }
                assert!(
                    snap == want,
                    "layout {layout:?} threads {threads} schedule {schedule}: resumed \
                     checkpoint {:#x} != uninterrupted {:#x}",
                    snapshot_hash(&snap),
                    snapshot_hash(&want)
                );
            }
        }
    }
}
