//! Elastic recovery end to end: a rank dies mid-run, a spare is admitted
//! into its slot, the group rolls back and replays — and the final state
//! is bit-exact against the fault-free run of the same schedule. With no
//! spares available, sustained kills degrade the run gracefully (fewer
//! slots, slab → root-gather below the floor, replicated at one survivor)
//! while conserving the particle population exactly, with every
//! transition ledgered.

use pic2d::decomp::{
    run_elastic_member, run_elastic_spare, DecompConfig, ElasticConfig, ElasticOutcome, SolverMode,
};
use pic2d::minimpi::{FaultPlan, World};
use pic2d::pic_core::faultlog::{FaultKind, FaultLog};
use pic2d::pic_core::sim::PicConfig;
use pic2d::sfc::Ordering;
use std::time::Duration;

const N: usize = 4_000;
const STEPS: u64 = 8;
const ACTIVE: usize = 4;

fn cfg(ord: Ordering) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(N);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.ordering = ord;
    cfg.sort_period = 2;
    cfg
}

fn dcfg(mode: SolverMode) -> DecompConfig {
    DecompConfig {
        halo_width: 2,
        solver: mode,
        ..DecompConfig::default()
    }
}

fn ecfg() -> ElasticConfig {
    ElasticConfig {
        checkpoint_every: 2,
        recut_every: 3, // exercise the scheduled-re-cut replay path
        slab_floor: 2,
        max_recoveries: 4,
        heartbeat_timeout: None,
        recv_deadline: Some(Duration::from_secs(5)),
        join_deadline: Duration::from_secs(30),
        // Each attempt sleeps ~2ms between votes; a wide window tolerates a
        // spare thread that is slow to register on the admission board.
        admit_attempts: 100,
    }
}

fn run_world(
    ord: Ordering,
    mode: SolverMode,
    spares: usize,
    plan: Option<FaultPlan>,
) -> Vec<ElasticOutcome> {
    World::run_elastic(ACTIVE, spares, plan, move |comm| {
        let e = ecfg();
        if comm.is_member() {
            run_elastic_member(comm, cfg(ord), dcfg(mode), &e, STEPS).unwrap()
        } else {
            run_elastic_spare(comm, cfg(ord), dcfg(mode), &e, STEPS).unwrap()
        }
    })
}

fn merged_log(outs: &[ElasticOutcome]) -> FaultLog {
    let mut log = FaultLog::new();
    for o in outs {
        log.merge(o.log.clone());
    }
    log
}

fn by_slot(outs: &[ElasticOutcome], slot: usize) -> &ElasticOutcome {
    outs.iter()
        .find(|o| o.slot == Some(slot))
        .unwrap_or_else(|| panic!("no survivor hosts slot {slot}"))
}

#[test]
fn kill_then_rejoin_replays_bit_exact() {
    for ord in [Ordering::Morton, Ordering::Hilbert] {
        for mode in [SolverMode::Slab, SolverMode::RootGather] {
            // Fault-free baseline of the identical schedule (same loop,
            // same checkpoint and re-cut cadence, no spares needed).
            let base = run_world(ord, mode, 0, None);
            assert!(base.iter().all(|o| o.survivor && o.recoveries == 0));

            // Same run, but rank 2 is killed mid-flight and one spare
            // (world rank 4) waits in the admission queue.
            let plan = FaultPlan::new(7).kill_rank(2, 40);
            let outs = run_world(ord, mode, 1, Some(plan));

            let dead = &outs[2];
            assert!(!dead.survivor, "{ord}/{mode:?}: rank 2 should be dead");
            let joiner = &outs[4];
            assert!(
                joiner.joined && joiner.survivor,
                "{ord}/{mode:?}: spare was not admitted"
            );
            assert_eq!(
                joiner.slot,
                Some(2),
                "{ord}/{mode:?}: joiner should adopt the dead rank's slot"
            );

            // Every slot's final state — particle arrays in their
            // deterministic slot order, and ρ/E at the owned points —
            // must be bitwise identical to the fault-free run's.
            for slot in 0..ACTIVE {
                let b = by_slot(&base, slot);
                let f = by_slot(&outs, slot);
                assert_eq!(b.steps, STEPS);
                assert_eq!(f.steps, STEPS);
                assert_eq!(
                    b.owned_points, f.owned_points,
                    "{ord}/{mode:?} slot {slot}: partitions diverged"
                );
                assert_eq!(
                    b.particles, f.particles,
                    "{ord}/{mode:?} slot {slot}: particle state diverged"
                );
                assert_eq!(
                    b.rho_owned, f.rho_owned,
                    "{ord}/{mode:?} slot {slot}: rho diverged"
                );
                assert_eq!(
                    b.ex_owned, f.ex_owned,
                    "{ord}/{mode:?} slot {slot}: Ex diverged"
                );
                assert_eq!(
                    b.ey_owned, f.ey_owned,
                    "{ord}/{mode:?} slot {slot}: Ey diverged"
                );
            }

            // The whole episode is ledgered in causal order.
            let log = merged_log(&outs);
            assert!(
                log.has_sequence(&[
                    FaultKind::Kill,
                    FaultKind::Shrink,
                    FaultKind::Join,
                    FaultKind::Rollback,
                ]),
                "{ord}/{mode:?}: missing kill → shrink → join → rollback sequence"
            );
            let survivors: Vec<&ElasticOutcome> = outs
                .iter()
                .filter(|o| o.survivor && o.slot.is_some())
                .collect();
            assert_eq!(
                survivors.len(),
                ACTIVE,
                "{ord}/{mode:?}: group not restored"
            );
            assert!(survivors.iter().all(|o| o.recoveries == 1 || o.joined));
            // Particle conservation: the slots tile the population.
            let total: usize = survivors.iter().map(|o| o.particles.len()).sum();
            assert_eq!(total, N, "{ord}/{mode:?}: particles lost in recovery");
        }
    }
}

#[test]
fn sustained_kills_degrade_to_replicated() {
    // No spares: each kill permanently shrinks the group. 4 → 3 keeps the
    // slab solve (floor 2 with ecfg below), 3 → 2 keeps it too, 2 → 1
    // degenerates to the replicated single-domain fallback. With the slab
    // floor at 3 the first drop below it (3 → 2) must also degrade the
    // solver — so the ladder is slab → root-gather → replicated.
    let ord = Ordering::Hilbert;
    let plan = FaultPlan::new(11)
        .kill_rank(1, 40)
        .kill_rank(2, 110)
        .kill_rank(3, 125);
    let outs = World::run_elastic(ACTIVE, 0, Some(plan), move |comm| {
        let e = ElasticConfig {
            checkpoint_every: 2,
            recut_every: 0,
            slab_floor: 3,
            max_recoveries: 6,
            heartbeat_timeout: None,
            recv_deadline: Some(Duration::from_secs(5)),
            join_deadline: Duration::from_secs(1),
            admit_attempts: 1,
        };
        run_elastic_member(comm, cfg(ord), dcfg(SolverMode::Slab), &e, STEPS).unwrap()
    });

    let survivors: Vec<&ElasticOutcome> = outs.iter().filter(|o| o.survivor).collect();
    assert_eq!(survivors.len(), 1, "exactly rank 0 should survive");
    let last = survivors[0];
    assert_eq!(last.world_rank, 0);
    assert_eq!(last.steps, STEPS, "run must complete despite the kills");
    assert_eq!(
        last.nslots, 1,
        "final topology is a single replicated domain"
    );
    assert_eq!(
        last.mode,
        Some(SolverMode::RootGather),
        "slab solve must have degraded"
    );
    assert_eq!(last.recoveries, 3);
    // No silent particle loss: the lone survivor holds the whole
    // population, bounced through three rollback + re-cut cycles.
    assert_eq!(
        last.particles.len(),
        N,
        "particles lost across degradations"
    );

    let log = merged_log(&outs);
    // Each shrink re-cuts to the smaller live count, and the drop below
    // the slab floor is ledgered as a degradation (twice: below-floor and
    // the final replicated fallback).
    assert!(
        log.has_sequence(&[
            FaultKind::Kill,
            FaultKind::Shrink,
            FaultKind::Rollback,
            FaultKind::Recut,
            FaultKind::Kill,
            FaultKind::Shrink,
            FaultKind::Degrade,
            FaultKind::Kill,
            FaultKind::Shrink,
            FaultKind::Degrade,
        ]),
        "degradation ladder not fully ledgered:\n{}",
        log.to_json()
    );
    // Two distinct transitions, recorded per surviving rank: below-floor
    // (2 survivors) and the replicated fallback (1 survivor).
    assert_eq!(log.count(FaultKind::Degrade), 3);
    assert!(log.count(FaultKind::Recut) >= 3, "each shrink must re-cut");
}
