//! End-to-end tests of the online adaptive hot-path controller: bit-exact
//! checkpoint/restore around controller switches, and mid-adaptation
//! resume of the recorded hot-path knobs.

use pic2d::pic_core::control::ControllerConfig;
use pic2d::pic_core::em::{EmConfig, EmSimulation};
use pic2d::pic_core::sim::{DepositPath, KernelPath, PicConfig, Simulation};

fn adaptive_cfg(n: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    // Start on a deposit path the low-density workload will abandon:
    // uniform-block fraction stays near zero, so the deterministic
    // controller walks SortedBlock -> LaneReduce after its patience.
    cfg.deposit_path = DepositPath::SortedBlock;
    cfg.controller = Some(ControllerConfig {
        min_sort_spacing: 2,
        max_sort_spacing: 6,
        ..ControllerConfig::deterministic()
    });
    cfg
}

/// A deterministic-controller run restores bit-identically from
/// checkpoints taken before, during, and after a hot-path switch: the
/// restored run replays the same sort schedule and the same switch
/// decisions, so the final checkpoint bytes are equal.
#[test]
fn controller_run_restores_bit_identically_around_switches() {
    let cfg = adaptive_cfg(3_000);
    let steps = 60usize;

    let mut reference = Simulation::new(cfg.clone()).unwrap();
    let mut snaps = vec![reference.checkpoint()];
    let mut switch_steps = Vec::new();
    for s in 0..steps {
        reference.step();
        for ev in reference.take_hot_path_events() {
            let _ = ev;
            switch_steps.push(s + 1);
        }
        snaps.push(reference.checkpoint());
    }
    assert!(
        !switch_steps.is_empty(),
        "workload must trigger at least one switch for the test to bite"
    );
    let first = switch_steps[0];
    assert!(first < steps, "switch must land inside the run");

    // Before the first switch, at it, and well after it.
    for &from in &[first.saturating_sub(1), first, (first + steps) / 2] {
        let mut resumed = Simulation::new(cfg.clone()).unwrap();
        resumed.restore(&snaps[from]).unwrap();
        assert_eq!(resumed.steps(), from);
        for _ in from..steps {
            resumed.step();
        }
        assert_eq!(
            resumed.checkpoint(),
            snaps[steps],
            "restore from step {from} must replay to identical bytes"
        );
    }
}

/// A checkpoint taken mid-adaptation records the controller's last
/// decisions as metadata; restoring into a simulation built from the
/// *original* config resumes those knobs instead of resetting them.
#[test]
fn restore_resumes_mid_adaptation_hot_path_knobs() {
    let cfg = adaptive_cfg(3_000);
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    let mut switched = false;
    for _ in 0..60 {
        sim.step();
        if !sim.take_hot_path_events().is_empty() {
            switched = true;
        }
    }
    assert!(switched, "controller must have adapted at least once");
    let adapted_deposit = sim.config().deposit_path;
    assert_ne!(
        adapted_deposit,
        DepositPath::SortedBlock,
        "the low-uniformity workload abandons the configured deposit path"
    );
    let snap = sim.checkpoint();

    // Fresh simulation from the original (pre-adaptation) config.
    let mut resumed = Simulation::new(cfg).unwrap();
    assert_eq!(resumed.config().deposit_path, DepositPath::SortedBlock);
    resumed.restore(&snap).unwrap();
    assert_eq!(resumed.config().deposit_path, adapted_deposit);
    assert!(
        resumed.controller().is_some(),
        "controller must survive the restore"
    );
}

/// `set_sort_period` is recorded as checkpoint metadata (not identity):
/// a restore adopts the period that was active at the checkpoint, even
/// without any controller.
#[test]
fn restore_adopts_recorded_sort_period() {
    let mut cfg = PicConfig::landau_table1(1_000);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 7;
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    sim.run(3);
    sim.set_sort_period(13);
    let snap = sim.checkpoint();

    let mut resumed = Simulation::new(cfg).unwrap();
    assert_eq!(resumed.config().sort_period, 7);
    resumed.restore(&snap).unwrap();
    assert_eq!(
        resumed.config().sort_period,
        13,
        "restored run must resume the active sort period"
    );
}

/// A pinned-deposit (`allow_deposit_switch = false`) Exact-path controller
/// run never leaves the Exact deposit, so adaptivity cannot perturb the
/// per-cell FP summation order the Exact contract promises.
#[test]
fn pinned_exact_controller_stays_exact_and_restores_bitwise() {
    let mut cfg = PicConfig::landau_table1(2_000);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.deposit_path = DepositPath::Exact;
    cfg.kernel_path = KernelPath::Scalar;
    cfg.controller = Some(ControllerConfig {
        allow_deposit_switch: false,
        min_sort_spacing: 2,
        max_sort_spacing: 6,
        ..ControllerConfig::deterministic()
    });

    let mut a = Simulation::new(cfg.clone()).unwrap();
    a.run(20);
    assert_eq!(a.config().deposit_path, DepositPath::Exact);
    let snap = a.checkpoint();
    a.run(20);
    assert_eq!(a.config().deposit_path, DepositPath::Exact);

    let mut b = Simulation::new(cfg).unwrap();
    b.restore(&snap).unwrap();
    b.run(20);
    assert_eq!(a.checkpoint(), b.checkpoint());
}

/// The EM driver threads the same controller: a deterministic-controller
/// multi-species run restores bit-identically from a mid-run checkpoint.
#[test]
fn em_controller_run_restores_bit_identically() {
    let mut cfg = EmConfig::ion_acoustic(600);
    cfg.deposit_path = DepositPath::SortedBlock;
    cfg.controller = Some(ControllerConfig {
        min_sort_spacing: 2,
        max_sort_spacing: 6,
        ..ControllerConfig::deterministic()
    });

    let mut a = EmSimulation::new(cfg.clone()).unwrap();
    for _ in 0..25 {
        a.step();
    }
    let snap = a.checkpoint();
    for _ in 0..25 {
        a.step();
    }

    let mut b = EmSimulation::new(cfg).unwrap();
    b.restore(&snap).unwrap();
    for _ in 0..25 {
        b.step();
    }
    assert_eq!(a.checkpoint(), b.checkpoint());
}
