//! Integration of the spatial decomposition with the PIC loop: a sharded
//! run — each rank owning a contiguous SFC range of cells, halo-exchanging
//! partial ρ, receiving its subdomain's E from the root's global solve, and
//! migrating boundary-crossing particles — must reproduce the serial
//! trajectory within floating-point summation noise, and must conserve the
//! global particle count exactly.

use pic2d::decomp::{DecompConfig, DecompError, DecomposedSimulation};
use pic2d::minimpi::World;
use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::sfc::Ordering;

const N: usize = 6_000;
const STEPS: usize = 6;

fn cfg(ord: Ordering) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(N);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.ordering = ord;
    cfg.sort_period = 2; // exercise the sort ↔ migration interplay
    cfg
}

/// What each decomposed rank reports back for validation.
struct RankReport {
    owned_points: Vec<usize>,
    rho_owned: Vec<f64>,
    e_points: Vec<usize>,
    ex: Vec<f64>,
    ey: Vec<f64>,
    counts_per_step: Vec<usize>,
    migrated_out: u64,
}

fn run_decomposed(ranks: usize, ord: Ordering, dcfg: DecompConfig) -> Vec<RankReport> {
    World::run(ranks, move |comm| {
        let mut dsim = DecomposedSimulation::new(cfg(ord), dcfg, comm).unwrap();
        let mut counts = Vec::new();
        for _ in 0..STEPS {
            dsim.step(comm).unwrap();
            counts.push(dsim.local_particles());
        }
        let rho = dsim.sim().rho();
        let (ex, ey) = dsim.sim().e_field();
        RankReport {
            rho_owned: dsim.plan().owned_points.iter().map(|&p| rho[p]).collect(),
            owned_points: dsim.plan().owned_points.clone(),
            ex: dsim.plan().e_points.iter().map(|&p| ex[p]).collect(),
            ey: dsim.plan().e_points.iter().map(|&p| ey[p]).collect(),
            e_points: dsim.plan().e_points.clone(),
            counts_per_step: counts,
            migrated_out: dsim.stats().migrated_out,
        }
    })
}

fn check_against_serial(ranks: usize, ord: Ordering, reports: &[RankReport]) {
    let mut serial = Simulation::new(cfg(ord)).unwrap();
    serial.run(STEPS);
    let rho_s = serial.rho();
    let (ex_s, ey_s) = serial.e_field();

    let mut covered = vec![false; rho_s.len()];
    for (r, rep) in reports.iter().enumerate() {
        for (&p, &v) in rep.owned_points.iter().zip(&rep.rho_owned) {
            assert!(
                (v - rho_s[p]).abs() < 1e-9,
                "{ord} ranks={ranks} rank={r}: rho[{p}] {v} vs serial {}",
                rho_s[p]
            );
            assert!(!covered[p], "point {p} owned twice");
            covered[p] = true;
        }
        for (i, &p) in rep.e_points.iter().enumerate() {
            assert!(
                (rep.ex[i] - ex_s[p]).abs() < 1e-9,
                "{ord} ranks={ranks} rank={r}: ex[{p}] {} vs serial {}",
                rep.ex[i],
                ex_s[p]
            );
            assert!(
                (rep.ey[i] - ey_s[p]).abs() < 1e-9,
                "{ord} ranks={ranks} rank={r}: ey[{p}] {} vs serial {}",
                rep.ey[i],
                ey_s[p]
            );
        }
    }
    assert!(
        covered.iter().all(|&c| c),
        "owned points do not tile the grid"
    );

    for s in 0..STEPS {
        let total: usize = reports.iter().map(|r| r.counts_per_step[s]).sum();
        assert_eq!(
            total, N,
            "{ord} ranks={ranks}: particle count after step {s}"
        );
    }
    let migrated: u64 = reports.iter().map(|r| r.migrated_out).sum();
    assert!(
        migrated > 0,
        "{ord} ranks={ranks}: no particle ever crossed a subdomain boundary"
    );
}

#[test]
fn decomposed_matches_serial_morton() {
    for ranks in [2usize, 4] {
        let reports = run_decomposed(ranks, Ordering::Morton, DecompConfig::default());
        check_against_serial(ranks, Ordering::Morton, &reports);
    }
}

#[test]
fn decomposed_matches_serial_hilbert() {
    for ranks in [2usize, 4] {
        let reports = run_decomposed(ranks, Ordering::Hilbert, DecompConfig::default());
        check_against_serial(ranks, Ordering::Hilbert, &reports);
    }
}

#[test]
fn weighted_partition_matches_serial_and_balances() {
    let dcfg = DecompConfig {
        weighted: true,
        ..DecompConfig::default()
    };
    let reports = run_decomposed(4, Ordering::Morton, dcfg);
    check_against_serial(4, Ordering::Morton, &reports);
    // Initial loads (step-0 counts are post-migration but close): every
    // rank should carry a nontrivial share of the population.
    for (r, rep) in reports.iter().enumerate() {
        let share = rep.counts_per_step[0] as f64 / N as f64;
        assert!(
            (0.10..=0.40).contains(&share),
            "rank {r} holds {share:.2} of the particles"
        );
    }
}

#[test]
fn leakage_surfaces_as_error_not_corruption() {
    // Two-stream beams at v₀ = 3 with a large Δt outrun a width-1 halo on
    // the first step; every rank must fail loudly instead of depositing
    // outside its exchanged region (and nobody may deadlock).
    let outcomes = World::run(2, |comm| {
        let mut c = PicConfig::two_stream(2_000);
        c.grid_nx = 32;
        c.grid_ny = 32;
        c.dt = 0.5;
        let dcfg = DecompConfig {
            halo_width: 1,
            ..DecompConfig::default()
        };
        let mut dsim = DecomposedSimulation::new(c, dcfg, comm).unwrap();
        match dsim.run(3, comm) {
            Ok(()) => None,
            Err(e) => Some(format!("{e}")),
        }
    });
    assert!(
        outcomes.iter().all(|o| o.is_some()),
        "all ranks must surface an error"
    );
    assert!(
        outcomes
            .iter()
            .any(|o| o.as_deref().is_some_and(|m| m.contains("outran the halo"))),
        "expected a leakage diagnostic, got {outcomes:?}"
    );
}

#[test]
fn checkpoint_fingerprint_covers_partition() {
    // Snapshots are tied to the rank's subdomain: a checkpoint taken under
    // one partition must not restore into a simulation owning different
    // cells (the buddy-checkpoint protocol relies on this).
    let mut a = cfg(Ordering::Morton);
    a.keep_cells = Some((0, 512));
    let mut b = cfg(Ordering::Morton);
    b.keep_cells = Some((512, 1024));
    let sim_a = Simulation::new(a).unwrap();
    let mut sim_b = Simulation::new(b).unwrap();
    let snap = sim_a.checkpoint();
    assert!(
        sim_b.restore(&snap).is_err(),
        "foreign-partition snapshot accepted"
    );
}

#[test]
fn rejected_configs() {
    let outcomes = World::run(2, |comm| {
        let mut bad = cfg(Ordering::L4D(8));
        bad.ordering = Ordering::L4D(8);
        let l4d = DecomposedSimulation::new(bad, DecompConfig::default(), comm).is_err();
        let mut aos = cfg(Ordering::Morton);
        aos.particle_layout = pic2d::pic_core::sim::ParticleLayout::Aos;
        let aos = DecomposedSimulation::new(aos, DecompConfig::default(), comm).is_err();
        let mut kr = cfg(Ordering::Morton);
        kr.keep_range = Some((0, 10));
        let kr = matches!(
            DecomposedSimulation::new(kr, DecompConfig::default(), comm),
            Err(DecompError::Config(_))
        );
        l4d && aos && kr
    });
    assert!(outcomes.iter().all(|&ok| ok));
}
