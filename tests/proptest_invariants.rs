//! Property-based tests on the core data structures and kernel invariants,
//! spanning the sfc, spectral and pic-core crates.

use pic2d::pic_core::fields::cic_weights;
use pic2d::pic_core::grid::{split_periodic, wrap_grid};
use pic2d::pic_core::particles::ParticlesSoA;
use pic2d::pic_core::sort::{is_sorted_by_cell, par_sort_out_of_place, sort_in_place, sort_out_of_place};
use pic2d::sfc::{CellLayout, Hilbert, L4D, Morton, RowMajor};
use pic2d::spectral::fft::{dft_naive, Direction, FftPlan};
use pic2d::spectral::Complex64;
use proptest::prelude::*;

proptest! {
    // ---------------- sfc ----------------

    #[test]
    fn morton_roundtrip(ix in 0usize..1024, iy in 0usize..1024) {
        let l = Morton::new(1024, 1024).unwrap();
        let c = l.encode(ix, iy);
        prop_assert!(c < 1024 * 1024);
        prop_assert_eq!(l.decode(c), (ix, iy));
    }

    #[test]
    fn hilbert_roundtrip(ix in 0usize..256, iy in 0usize..256) {
        let l = Hilbert::new(256, 256).unwrap();
        prop_assert_eq!(l.decode(l.encode(ix, iy)), (ix, iy));
    }

    #[test]
    fn l4d_roundtrip(ix in 0usize..128, iy in 0usize..128, size in 1usize..=128) {
        let l = L4D::new(128, 128, size).unwrap();
        prop_assert_eq!(l.decode(l.encode(ix, iy)), (ix, iy));
    }

    #[test]
    fn hilbert_consecutive_adjacent(start in 0usize..(64 * 64 - 8)) {
        // Any window of the Hilbert walk moves by exactly one 4-neighbour
        // step per index.
        let l = Hilbert::new(64, 64).unwrap();
        for i in start..start + 7 {
            let a = l.decode(i);
            let b = l.decode(i + 1);
            prop_assert_eq!(a.0.abs_diff(b.0) + a.1.abs_diff(b.1), 1);
        }
    }

    #[test]
    fn layouts_agree_on_totals(side_pow in 3u32..=7) {
        let side = 1usize << side_pow;
        let layouts: Vec<Box<dyn CellLayout>> = vec![
            Box::new(RowMajor::new(side, side).unwrap()),
            Box::new(Morton::new(side, side).unwrap()),
            Box::new(Hilbert::new(side, side).unwrap()),
        ];
        for l in &layouts {
            let sum: usize = (0..side).flat_map(|x| (0..side).map(move |y| (x, y)))
                .map(|(x, y)| l.encode(x, y)).sum();
            // A bijection onto [0, n) always sums to n(n-1)/2.
            let n = side * side;
            prop_assert_eq!(sum, n * (n - 1) / 2);
        }
    }

    // ---------------- grid arithmetic ----------------

    #[test]
    fn split_periodic_in_range(g in -1e5f64..1e5, pow in 1u32..=10) {
        let n = 1usize << pow;
        let (cell, off) = split_periodic(g, n);
        prop_assert!(cell < n);
        prop_assert!((0.0..1.0).contains(&off));
        // Reconstruction is congruent mod n.
        let rebuilt = wrap_grid(cell as f64 + off, n);
        let reference = wrap_grid(g, n);
        let d = (rebuilt - reference).abs();
        prop_assert!(d < 1e-6 || (n as f64 - d) < 1e-6, "g={} d={}", g, d);
    }

    #[test]
    fn cic_weights_are_a_partition_of_unity(dx in 0.0f64..1.0, dy in 0.0f64..1.0) {
        let w = cic_weights(dx, dy);
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    // ---------------- sorting ----------------

    #[test]
    fn sorts_agree_and_preserve_payload(cells in prop::collection::vec(0u32..256, 1..500)) {
        let n = cells.len();
        let mut p = ParticlesSoA::zeroed(n);
        p.icell.copy_from_slice(&cells);
        for i in 0..n {
            p.vx[i] = i as f64; // unique payload
        }
        let mut a = p.clone();
        let mut b = p.clone();
        let mut c = p.clone();
        let mut s1 = ParticlesSoA::zeroed(0);
        let mut s2 = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut a, &mut s1, 256);
        sort_in_place(&mut b, 256);
        par_sort_out_of_place(&mut c, &mut s2, 256, 4);
        prop_assert!(is_sorted_by_cell(&a));
        prop_assert!(is_sorted_by_cell(&b));
        // Out-of-place sorts are stable and must agree exactly.
        prop_assert_eq!(&a.icell, &c.icell);
        prop_assert_eq!(&a.vx, &c.vx);
        // In-place is unstable: compare multisets.
        let multiset = |p: &ParticlesSoA| {
            let mut v: Vec<(u32, u64)> =
                (0..p.len()).map(|i| (p.icell[i], p.vx[i].to_bits())).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(multiset(&a), multiset(&b));
    }

    // ---------------- spectral ----------------

    #[test]
    fn fft_matches_dft(values in prop::collection::vec(-100.0f64..100.0, 16)) {
        let sig: Vec<Complex64> = values.iter().map(|&v| Complex64::from_re(v)).collect();
        let plan = FftPlan::new(16).unwrap();
        let mut fast = sig.clone();
        plan.forward(&mut fast);
        let slow = dft_naive(&sig, Direction::Forward);
        for k in 0..16 {
            prop_assert!((fast[k] - slow[k]).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_roundtrip_random(values in prop::collection::vec(-1e6f64..1e6, 64)) {
        let sig: Vec<Complex64> = values.iter().map(|&v| Complex64::from_re(v)).collect();
        let plan = FftPlan::new(64).unwrap();
        let mut d = sig.clone();
        plan.forward(&mut d);
        plan.inverse(&mut d);
        for k in 0..64 {
            prop_assert!((d[k] - sig[k]).abs() < 1e-6 * (1.0 + sig[k].abs()));
        }
    }
}
