//! Seeded randomized tests on the core data structures and kernel
//! invariants, spanning the sfc, spectral and pic-core crates.
//!
//! Each test draws a few hundred cases from the in-repo xoshiro PRNG with a
//! fixed seed — deterministic (failures reproduce exactly) and free of the
//! proptest dependency, which this offline environment cannot fetch.

use pic2d::pic_core::control::measure_disorder;
use pic2d::pic_core::fields::cic_weights;
use pic2d::pic_core::grid::{split_periodic, wrap_grid};
use pic2d::pic_core::particles::ParticlesSoA;
use pic2d::pic_core::rng::Rng;
use pic2d::pic_core::sort::{
    is_sorted_by_cell, par_sort_out_of_place, sort_in_place, sort_out_of_place,
};
use pic2d::sfc::{CellLayout, Hilbert, Morton, RowMajor, L4D};
use pic2d::spectral::fft::{dft_naive, transpose_tiled, Direction, FftPlan, TRANSPOSE_TILE};
use pic2d::spectral::Complex64;

const CASES: usize = 256;

// ---------------- sfc ----------------

#[test]
fn morton_roundtrip() {
    let l = Morton::new(1024, 1024).unwrap();
    let mut rng = Rng::seed_from_u64(0x5fc0);
    for _ in 0..CASES {
        let (ix, iy) = (rng.below(1024) as usize, rng.below(1024) as usize);
        let c = l.encode(ix, iy);
        assert!(c < 1024 * 1024);
        assert_eq!(l.decode(c), (ix, iy));
    }
}

#[test]
fn hilbert_roundtrip() {
    let l = Hilbert::new(256, 256).unwrap();
    let mut rng = Rng::seed_from_u64(0x5fc1);
    for _ in 0..CASES {
        let (ix, iy) = (rng.below(256) as usize, rng.below(256) as usize);
        assert_eq!(l.decode(l.encode(ix, iy)), (ix, iy));
    }
}

#[test]
fn l4d_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x5fc2);
    for _ in 0..CASES {
        let size = rng.below(128) as usize + 1;
        let l = L4D::new(128, 128, size).unwrap();
        let (ix, iy) = (rng.below(128) as usize, rng.below(128) as usize);
        assert_eq!(l.decode(l.encode(ix, iy)), (ix, iy), "size={size}");
    }
}

#[test]
fn hilbert_consecutive_adjacent() {
    // Any window of the Hilbert walk moves by exactly one 4-neighbour
    // step per index.
    let l = Hilbert::new(64, 64).unwrap();
    let mut rng = Rng::seed_from_u64(0x5fc3);
    for _ in 0..CASES {
        let start = rng.below((64 * 64 - 8) as u64) as usize;
        for i in start..start + 7 {
            let a = l.decode(i);
            let b = l.decode(i + 1);
            assert_eq!(a.0.abs_diff(b.0) + a.1.abs_diff(b.1), 1, "i={i}");
        }
    }
}

#[test]
fn layouts_agree_on_totals() {
    for side_pow in 3u32..=7 {
        let side = 1usize << side_pow;
        let layouts: Vec<Box<dyn CellLayout>> = vec![
            Box::new(RowMajor::new(side, side).unwrap()),
            Box::new(Morton::new(side, side).unwrap()),
            Box::new(Hilbert::new(side, side).unwrap()),
        ];
        for l in &layouts {
            let sum: usize = (0..side)
                .flat_map(|x| (0..side).map(move |y| (x, y)))
                .map(|(x, y)| l.encode(x, y))
                .sum();
            // A bijection onto [0, n) always sums to n(n-1)/2.
            let n = side * side;
            assert_eq!(sum, n * (n - 1) / 2, "side={side}");
        }
    }
}

// ---------------- partitioner ----------------

#[test]
fn partition_owns_every_cell_exactly_once() {
    use pic2d::sfc::partition::{cut_uniform, owner_of};
    let mut rng = Rng::seed_from_u64(0x9a57);
    for _ in 0..CASES {
        let ncells = rng.below(4096) as usize + 1;
        let nparts = rng.below(ncells as u64) as usize + 1;
        let ranges = cut_uniform(ncells, nparts);
        assert_eq!(ranges.len(), nparts);
        // Contiguous in SFC order: each range starts where the last ended.
        assert_eq!(ranges[0].start, 0);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap or overlap at {w:?}");
        }
        assert_eq!(ranges[nparts - 1].end, ncells);
        // Sizes near-equal and every range non-empty.
        let (lo, hi) = ranges
            .iter()
            .map(|r| r.len())
            .fold((usize::MAX, 0), |(l, h), s| (l.min(s), h.max(s)));
        assert!(lo >= 1 && hi - lo <= 1, "sizes range {lo}..{hi}");
        // owner_of agrees with direct membership on sampled cells.
        for _ in 0..8 {
            let c = rng.below(ncells as u64) as usize;
            assert!(ranges[owner_of(&ranges, c)].contains(&c));
        }
    }
}

#[test]
fn weighted_partition_conserves_weight_and_balances() {
    use pic2d::sfc::partition::cut_weighted;
    let mut rng = Rng::seed_from_u64(0x9a58);
    for case in 0..CASES {
        let ncells = rng.below(2000) as usize + 8;
        let nparts = (rng.below(8) as usize + 2).min(ncells);
        let weights: Vec<f64> = (0..ncells)
            .map(|_| {
                // Mix of empty, light, and heavy cells.
                match rng.below(4) {
                    0 => 0.0,
                    1 => rng.uniform(),
                    _ => rng.range(1.0, 50.0),
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let ranges = cut_weighted(&weights, nparts);
        assert_eq!(ranges.len(), nparts, "case={case}");
        assert_eq!(ranges[0].start, 0);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(ranges[nparts - 1].end, ncells);
        // Conservation: the per-part loads sum back to the total weight.
        let parts: Vec<f64> = ranges
            .iter()
            .map(|r| weights[r.clone()].iter().sum())
            .collect();
        let sum: f64 = parts.iter().sum();
        assert!(
            (sum - total).abs() <= 1e-9 * total.max(1.0),
            "case={case}: {sum} vs {total}"
        );
        // The greedy cut never overshoots a target by more than one cell,
        // so no part exceeds the ideal share by more than the heaviest cell.
        let wmax = weights.iter().cloned().fold(0.0, f64::max);
        for (k, &p) in parts.iter().enumerate() {
            assert!(
                p <= total / nparts as f64 + wmax + 1e-9,
                "case={case}: part {k} overloaded ({p} of {total})"
            );
        }
    }
}

#[test]
fn recut_weighted_tiles_and_bounds_overload() {
    // Live re-partition on random histograms — including the degenerate
    // shapes a drifting plasma produces (empty regions, one dominant
    // cell, all-empty): always a contiguous exact tiling with no empty
    // rank, and no rank loaded beyond the ideal share plus one cell.
    use pic2d::decomp::Partition;
    use pic2d::sfc::Ordering as SfcOrdering;
    let mut rng = Rng::seed_from_u64(0xe1a5);
    for case in 0..CASES {
        let side = 1usize << (rng.below(3) + 3); // 8, 16, 32
        let ord = match case % 3 {
            0 => SfcOrdering::RowMajor,
            1 => SfcOrdering::Morton,
            _ => SfcOrdering::Hilbert,
        };
        let p = Partition::new(ord, side, side, 2).unwrap();
        let ncells = p.ncells();
        let weights: Vec<f64> = match case % 5 {
            // Degenerate: empty histogram (no particles anywhere).
            0 => vec![0.0; ncells],
            // Degenerate: one cell holds the whole population.
            1 => {
                let mut w = vec![0.0; ncells];
                w[rng.below(ncells as u64) as usize] = 5000.0;
                w
            }
            // Live: clustered mass over a random sub-range, zeros elsewhere.
            2 => {
                let lo = rng.below(ncells as u64 / 2) as usize;
                let hi = lo + rng.below((ncells - lo) as u64) as usize + 1;
                (0..ncells)
                    .map(|c| {
                        if (lo..hi).contains(&c) {
                            rng.range(1.0, 40.0)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            }
            // Live: arbitrary mixed histogram.
            _ => (0..ncells)
                .map(|_| match rng.below(3) {
                    0 => 0.0,
                    1 => rng.uniform() * 4.0,
                    _ => rng.range(1.0, 60.0),
                })
                .collect(),
        };
        let nparts = rng.below(8) as usize + 1;
        let q = p.recut_weighted(&weights, nparts).unwrap();
        let ranges = q.ranges();
        assert_eq!(ranges.len(), nparts, "case={case}");
        assert_eq!(ranges[0].start, 0, "case={case}");
        assert_eq!(ranges[nparts - 1].end, ncells, "case={case}");
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "case={case}: gap/overlap {w:?}");
        }
        for r in ranges {
            assert!(!r.is_empty(), "case={case}: empty rank {r:?}");
        }
        // Bounded overload: the greedy cut never overshoots the ideal
        // share by more than the heaviest single cell.
        let total: f64 = weights.iter().sum();
        let wmax = weights.iter().cloned().fold(0.0, f64::max);
        for (k, r) in ranges.iter().enumerate() {
            let load: f64 = weights[r.clone()].iter().sum();
            assert!(
                load <= total / nparts as f64 + wmax + 1e-9,
                "case={case}: rank {k} overloaded ({load} of {total})"
            );
        }
    }
}

#[test]
fn recut_migrate_recut_conserves_particles_exactly() {
    // The partition-level shadow of the driver's re-cut → migrate cycle:
    // assign random particles to owners under a live re-cut, "migrate"
    // them (each particle claimed by exactly its owner), and re-cut again.
    // Population is conserved exactly at every stage, and a re-cut from an
    // unchanged histogram reproduces identical cuts — the property that
    // makes scheduled re-cuts replay as no-ops after a rollback.
    use pic2d::decomp::{particle_cell_weights, Partition};
    use pic2d::sfc::Ordering as SfcOrdering;
    let mut rng = Rng::seed_from_u64(0xe1a6);
    for case in 0..CASES {
        let side = 16usize;
        let p = Partition::new(SfcOrdering::Hilbert, side, side, 4).unwrap();
        let ncells = p.ncells();
        let n = rng.below(3000) + 100;
        // Clustered population: most particles in a narrow cell band.
        let band = rng.below(ncells as u64 / 4) + 1;
        let base = rng.below(ncells as u64 - band);
        let icell: Vec<u32> = (0..n)
            .map(|_| {
                if rng.below(4) == 0 {
                    rng.below(ncells as u64) as u32
                } else {
                    (base + rng.below(band)) as u32
                }
            })
            .collect();
        let w = particle_cell_weights(&icell, ncells);
        assert_eq!(w.iter().sum::<f64>() as u64, n, "case={case}");

        let nparts = rng.below(6) as usize + 1;
        let q = p.recut_weighted(&w, nparts).unwrap();
        // Migrate: each particle lands with exactly one owner.
        let mut per_part = vec![0usize; nparts];
        for &c in &icell {
            per_part[q.owner(c as usize)] += 1;
        }
        assert_eq!(
            per_part.iter().sum::<usize>() as u64,
            n,
            "case={case}: particles lost in migration"
        );
        // Unchanged histogram → identical cuts (replay idempotence).
        let q2 = q.recut_weighted(&w, nparts).unwrap();
        assert_eq!(q.ranges(), q2.ranges(), "case={case}: recut not stable");
        // Round-trip through a different rank count and back: the
        // population is conserved through both re-assignments.
        let other = rng.below(6) as usize + 1;
        let r = q.recut_weighted(&w, other).unwrap();
        let mut per_r = vec![0usize; other];
        for &c in &icell {
            per_r[r.owner(c as usize)] += 1;
        }
        assert_eq!(per_r.iter().sum::<usize>() as u64, n, "case={case}");
        let back = r.recut_weighted(&w, nparts).unwrap();
        assert_eq!(back.ranges(), q.ranges(), "case={case}: round-trip drifted");
    }
}

// ---------------- grid arithmetic ----------------

#[test]
fn split_periodic_in_range() {
    let mut rng = Rng::seed_from_u64(0x61d0);
    for _ in 0..CASES {
        let g = rng.range(-1e5, 1e5);
        let n = 1usize << (rng.below(10) + 1);
        let (cell, off) = split_periodic(g, n);
        assert!(cell < n);
        assert!((0.0..1.0).contains(&off));
        // Reconstruction is congruent mod n.
        let rebuilt = wrap_grid(cell as f64 + off, n);
        let reference = wrap_grid(g, n);
        let d = (rebuilt - reference).abs();
        assert!(d < 1e-6 || (n as f64 - d) < 1e-6, "g={g} d={d}");
    }
}

#[test]
fn cic_weights_are_a_partition_of_unity() {
    let mut rng = Rng::seed_from_u64(0x61d1);
    for _ in 0..CASES {
        let (dx, dy) = (rng.uniform(), rng.uniform());
        let w = cic_weights(dx, dy);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12, "({dx}, {dy})");
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}

// ---------------- sorting ----------------

#[test]
fn sorts_agree_and_preserve_payload() {
    let mut rng = Rng::seed_from_u64(0x50f7);
    for case in 0..64 {
        let n = rng.below(499) as usize + 1;
        let mut p = ParticlesSoA::zeroed(n);
        for i in 0..n {
            p.icell[i] = rng.below(256) as u32;
            p.vx[i] = i as f64; // unique payload
        }
        let mut a = p.clone();
        let mut b = p.clone();
        let mut c = p.clone();
        let mut s1 = ParticlesSoA::zeroed(0);
        let mut s2 = ParticlesSoA::zeroed(0);
        sort_out_of_place(&mut a, &mut s1, 256);
        sort_in_place(&mut b, 256);
        par_sort_out_of_place(&mut c, &mut s2, 256, 4);
        assert!(is_sorted_by_cell(&a), "case={case}");
        assert!(is_sorted_by_cell(&b), "case={case}");
        // Out-of-place sorts are stable and must agree exactly.
        assert_eq!(&a.icell, &c.icell);
        assert_eq!(&a.vx, &c.vx);
        // In-place is unstable: compare multisets.
        let multiset = |p: &ParticlesSoA| {
            let mut v: Vec<(u32, u64)> = (0..p.len())
                .map(|i| (p.icell[i], p.vx[i].to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(multiset(&a), multiset(&b));
    }
}

// ---------------- spectral ----------------

#[test]
fn fft_matches_dft() {
    let mut rng = Rng::seed_from_u64(0xff70);
    for _ in 0..64 {
        let sig: Vec<Complex64> = (0..16)
            .map(|_| Complex64::from_re(rng.range(-100.0, 100.0)))
            .collect();
        let plan = FftPlan::new(16).unwrap();
        let mut fast = sig.clone();
        plan.forward(&mut fast);
        let slow = dft_naive(&sig, Direction::Forward);
        for k in 0..16 {
            assert!((fast[k] - slow[k]).abs() < 1e-8, "k={k}");
        }
    }
}

#[test]
fn tiled_transpose_roundtrip_any_tile() {
    // Double transpose is the identity for every matrix shape and every
    // tile size — including tile 1 (no blocking), the default 16, and
    // tiles that do not divide the dimensions (ragged edge blocks).
    let mut rng = Rng::seed_from_u64(0x7a05);
    for case in 0..CASES {
        let rows = rng.below(48) as usize + 1;
        let cols = rng.below(48) as usize + 1;
        let tile = match case % 3 {
            0 => 1,
            1 => 8,
            _ => rng.below(20) as usize + 1, // frequently non-divisible
        };
        let src: Vec<Complex64> = (0..rows * cols)
            .map(|_| Complex64::new(rng.range(-1e3, 1e3), rng.range(-1e3, 1e3)))
            .collect();
        let mut t = vec![Complex64::ZERO; rows * cols];
        transpose_tiled(&src, &mut t, rows, cols, tile);
        // Spot-check the defining identity dst[j*rows+i] = src[i*cols+j].
        for _ in 0..16 {
            let i = rng.below(rows as u64) as usize;
            let j = rng.below(cols as u64) as usize;
            assert_eq!(
                t[j * rows + i],
                src[i * cols + j],
                "case={case} rows={rows} cols={cols} tile={tile} ({i},{j})"
            );
        }
        let mut back = vec![Complex64::ZERO; rows * cols];
        transpose_tiled(&t, &mut back, cols, rows, tile);
        assert_eq!(back, src, "case={case} rows={rows} cols={cols} tile={tile}");
        // Tile size never changes the result: compare against the default.
        let mut t16 = vec![Complex64::ZERO; rows * cols];
        transpose_tiled(&src, &mut t16, rows, cols, TRANSPOSE_TILE);
        assert_eq!(t, t16, "case={case}: tile {tile} differs from default");
    }
}

#[test]
fn fft_roundtrip_random() {
    let mut rng = Rng::seed_from_u64(0xff71);
    for _ in 0..64 {
        let sig: Vec<Complex64> = (0..64)
            .map(|_| Complex64::from_re(rng.range(-1e6, 1e6)))
            .collect();
        let plan = FftPlan::new(64).unwrap();
        let mut d = sig.clone();
        plan.forward(&mut d);
        plan.inverse(&mut d);
        for k in 0..64 {
            assert!((d[k] - sig[k]).abs() < 1e-6 * (1.0 + sig[k].abs()), "k={k}");
        }
    }
}

// ---------------- deposition ----------------

#[test]
fn deposit_paths_conserve_total_charge() {
    // Every deposition kernel — exact scalar order, exact lane-blocked,
    // and both reassociated vectorized paths — deposits exactly `w` per
    // particle (the CIC weights are a partition of unity), so the grand
    // total over all cells and corners is `n * w` up to rounding, for any
    // cell ordering (sorted or scrambled) and any sign of `w`.
    use pic2d::pic_core::kernels::deposit::{self, DepositFn};
    use pic2d::pic_core::kernels::{accumulate, simd};
    let mut rng = Rng::seed_from_u64(0xd3b0);
    let kernels: [(&str, DepositFn); 4] = [
        ("exact_scalar", accumulate::accumulate_redundant),
        ("exact_lanes", simd::accumulate_redundant_lanes),
        ("lane_reduce", deposit::accumulate_lane_reduce),
        ("sorted_block", deposit::accumulate_sorted_block),
    ];
    for case in 0..CASES {
        let ncells = 1usize << (rng.below(6) + 4); // 16..512
        let n = rng.below(4000) as usize; // includes the empty population
        let mut icell: Vec<u32> = (0..n).map(|_| rng.below(ncells as u64) as u32).collect();
        if case % 2 == 0 {
            icell.sort_unstable();
        }
        let dx: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let dy: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let w = rng.range(-2.0, 2.0);
        let expect = n as f64 * w;
        let tol = 1e-12 * (n as f64 + 1.0) * (1.0 + w.abs());
        for (name, kernel) in kernels {
            let mut rho4 = vec![[0.0f64; 4]; ncells];
            kernel(&icell, &dx, &dy, &mut rho4, w);
            let total: f64 = rho4.iter().flatten().sum();
            assert!(
                (total - expect).abs() <= tol,
                "case={case} {name}: total {total} vs {expect} (n={n}, w={w})"
            );
        }
    }
}

// ---------------- adaptive disorder metric ----------------

#[test]
fn disorder_metric_is_bounded() {
    let mut rng = Rng::seed_from_u64(0xd150);
    for case in 0..CASES {
        let n = rng.below(4000) as usize;
        let ncells = rng.below(512) as u64 + 1;
        let stride = rng.below(8) as usize + 1;
        let icell: Vec<u32> = (0..n).map(|_| rng.below(ncells) as u32).collect();
        let d = measure_disorder(&icell, stride, ncells as usize);
        assert!(
            (0.0..=1.0).contains(&d.descent_frac),
            "case={case} n={n} stride={stride}: descent {}",
            d.descent_frac
        );
        assert!(
            (0.0..=1.0).contains(&d.uniform_block_frac),
            "case={case} n={n} stride={stride}: uniform {}",
            d.uniform_block_frac
        );
        assert!(
            (0.0..=1.0).contains(&d.jump_frac),
            "case={case} n={n} stride={stride}: far {}",
            d.jump_frac
        );
    }
}

#[test]
fn disorder_metric_is_zero_on_sorted_populations() {
    let mut rng = Rng::seed_from_u64(0xd151);
    for case in 0..CASES {
        let n = rng.below(4000) as usize;
        let ncells = rng.below(512) as u64 + 1;
        let stride = rng.below(8) as usize + 1;
        let mut icell: Vec<u32> = (0..n).map(|_| rng.below(ncells) as u32).collect();
        icell.sort_unstable();
        let d = measure_disorder(&icell, stride, ncells as usize);
        assert_eq!(
            d.descent_frac, 0.0,
            "case={case} n={n} stride={stride}: sorted population must measure ordered"
        );
    }
}

#[test]
fn disorder_metric_is_monotone_under_progressive_shuffling() {
    // Start sorted and cumulatively apply disjoint adjacent-pair swaps:
    // each batch strictly adds descents (an adjacent swap of unequal
    // sorted values creates exactly one new descent and destroys none at
    // full sampling), so the stride-1 metric must be non-decreasing.
    let mut rng = Rng::seed_from_u64(0xd152);
    for case in 0..CASES / 4 {
        let n = rng.below(2000) as usize + 64;
        let mut icell: Vec<u32> = (0..n as u32).collect();
        let mut swapped = vec![false; n];
        let mut prev = measure_disorder(&icell, 1, n).descent_frac;
        assert_eq!(prev, 0.0, "case={case}");
        for round in 0..8 {
            // One batch of fresh disjoint adjacent transpositions.
            for _ in 0..n / 16 {
                let i = rng.below(n as u64 - 1) as usize;
                if !swapped[i] && !swapped[i + 1] {
                    icell.swap(i, i + 1);
                    swapped[i] = true;
                    swapped[i + 1] = true;
                }
            }
            let d = measure_disorder(&icell, 1, n).descent_frac;
            assert!(
                d >= prev,
                "case={case} round={round}: disorder regressed {prev} -> {d}"
            );
            prev = d;
        }
    }
}
