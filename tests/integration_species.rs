//! Integration of the multi-species 2d3v electromagnetic subsystem:
//! cyclotron motion against the analytic gyro-circle on both kernel
//! dispatch paths, bit-exact equivalence with the legacy electrostatic
//! driver at `B = 0`, per-species conservation laws, and electrostatic and
//! electromagnetic tenants sharing one job runtime under the calibrated
//! cost-based scheduler.

use pic2d::pic_core::em::{EmConfig, EmSimulation};
use pic2d::pic_core::kernels::deposit::DepositPath;
use pic2d::pic_core::resilience::checkpoint::snapshot_hash;
use pic2d::pic_core::sim::{KernelPath, PicConfig, Simulation};
use pic2d::serve::{JobRuntime, JobSpec, JobState, RuntimeConfig};
use std::f64::consts::PI;

#[test]
fn cyclotron_period_and_radius_match_analytic_on_both_kernel_paths() {
    // Ω = |q|B/m = 1, v₀ = 0.5 ⇒ period 2π, gyro-radius 0.5. The Boris
    // rotation angle 2·atan(ΩΔt/2) carries an O((ΩΔt)²) period error,
    // ≈ 2·10⁻⁵ relative at Δt = 0.05 — far inside the 1 % gates.
    for path in [KernelPath::Scalar, KernelPath::Lanes] {
        let mut cfg = EmConfig::cyclotron(512);
        cfg.kernel_path = path;
        let dt = cfg.dt;
        let mut sim = EmSimulation::new(cfg).unwrap();

        let steps = 126; // just past one analytic period
        let mut prev = sim.moments()[0].mean_v;
        let mut rotation = 0.0;
        let (mut x, mut xmin, mut xmax) = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..steps {
            sim.step();
            let cur = sim.moments()[0].mean_v;
            let da = cur[1].atan2(cur[0]) - prev[1].atan2(prev[0]);
            rotation += (da + PI).rem_euclid(2.0 * PI) - PI;
            prev = cur;
            // Integrate the mean x-displacement: its extent over a full
            // turn is the gyro-diameter.
            x += dt * cur[0];
            xmin = xmin.min(x);
            xmax = xmax.max(x);
        }

        let period = steps as f64 * dt * 2.0 * PI / rotation.abs();
        let rel_period = (period - 2.0 * PI).abs() / (2.0 * PI);
        assert!(rel_period < 0.01, "{path:?}: gyro-period {period} vs 2π");

        let radius = (xmax - xmin) / 2.0;
        assert!(
            (radius - 0.5).abs() / 0.5 < 0.01,
            "{path:?}: gyro-radius {radius} vs analytic 0.5"
        );

        // E = 0: the Boris rotation preserves |v| exactly.
        let m = sim.moments()[0];
        let speed = (m.mean_v[0].powi(2) + m.mean_v[1].powi(2)).sqrt();
        assert!((speed - 0.5).abs() < 1e-12, "{path:?}: speed {speed}");
    }
}

#[test]
fn lane_blocked_em_trajectory_is_bit_identical_to_scalar() {
    // With the Exact deposit the lane-blocked Boris push and current
    // deposition must reproduce the scalar trajectory to the last bit.
    // (The checkpoint bytes themselves differ — the fingerprint covers
    // `kernel_path` — so compare the state arrays.)
    let run = |path: KernelPath| {
        let mut cfg = EmConfig::ion_acoustic(2_000);
        cfg.kernel_path = path;
        cfg.deposit_path = DepositPath::Exact;
        let mut sim = EmSimulation::new(cfg).unwrap();
        sim.run(10);
        sim
    };
    let a = run(KernelPath::Scalar);
    let b = run(KernelPath::Lanes);
    assert_eq!(a.rho(), b.rho());
    assert_eq!(a.j_field(), b.j_field());
    for (sa, sb) in a.species().iter().zip(b.species()) {
        assert_eq!(sa.p.icell, sb.p.icell, "{}", sa.def.name);
        assert_eq!(sa.p.vx, sb.p.vx, "{}", sa.def.name);
        assert_eq!(sa.p.vy, sb.p.vy, "{}", sa.def.name);
        assert_eq!(sa.vz, sb.vz, "{}", sa.def.name);
    }
}

#[test]
fn em_driver_reproduces_legacy_two_stream_at_zero_field() {
    // `EmConfig::from_legacy` lifts a single-species electrostatic config
    // into the 2d3v driver with B = 0; the extra machinery (Boris push,
    // three-component current, vz) must change nothing about the physics.
    let mut cfg = PicConfig::two_stream(20_000);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.hoisted = false; // the EM arenas store physical velocities
    let mut legacy = Simulation::new(cfg.clone()).unwrap();
    legacy.run(120);

    let mut em = EmSimulation::new(EmConfig::from_legacy(&cfg)).unwrap();
    em.run(120);

    let lh = &legacy.diagnostics().history;
    let eh = &em.diagnostics().history;
    assert_eq!(lh.len(), eh.len());
    for (l, e) in lh.iter().zip(eh.iter()) {
        assert!(
            (l.ex_mode - e.ex_mode).abs() <= 1e-12 * l.ex_mode.abs().max(1.0),
            "ex_mode diverged: legacy {} vs em {}",
            l.ex_mode,
            e.ex_mode
        );
    }
}

#[test]
fn per_species_conservation_in_ion_acoustic() {
    let mut sim = EmSimulation::new(EmConfig::ion_acoustic(4_000)).unwrap();
    let before = sim.moments();
    let p0 = sim.total_momentum();
    sim.run(100);
    let after = sim.moments();

    // Markers are never created or lost: per-species number and charge
    // are exact.
    for (b, a) in before.iter().zip(after.iter()) {
        assert_eq!(b.number, a.number);
        assert_eq!(b.charge, a.charge);
    }
    // The deposited charge density always integrates to the species
    // table's total charge.
    let rel =
        (sim.total_charge() - sim.charge_reference()).abs() / sim.charge_reference().abs().max(1.0);
    assert!(rel < 1e-9, "deposited charge drifted {rel}");

    // Total momentum: compare the drift against the thermal momentum
    // scale m·w·√(n·Σ|v|²) ≥ |Σ m·w·v| (Cauchy–Schwarz).
    let scale: f64 = after
        .iter()
        .zip(sim.species())
        .map(|(m, s)| (2.0 * m.kinetic * s.def.mass * m.number).sqrt())
        .sum();
    let p1 = sim.total_momentum();
    let drift = (0..3).map(|c| (p1[c] - p0[c]).powi(2)).sum::<f64>().sqrt();
    assert!(
        drift < 1e-6 * scale,
        "momentum drift {drift} vs scale {scale}"
    );
}

#[test]
fn mixed_tenants_share_the_runtime_and_calibrate_the_cost_model() {
    let rcfg = RuntimeConfig {
        quantum_steps: 8,
        ..RuntimeConfig::default()
    };
    let threads = rcfg.threads;
    let mut rt = JobRuntime::new(rcfg);

    let es_cfg = {
        let mut c = PicConfig::landau_table1(3_000);
        c.grid_nx = 32;
        c.grid_ny = 32;
        c
    };
    let em_cfg = EmConfig::ion_acoustic(1_500);
    let es = rt.submit(JobSpec::new("electrostatic", es_cfg.clone(), 20));
    let em = rt.submit(JobSpec::new_em("electromagnetic", em_cfg.clone(), 20));
    let report = rt.run();

    let es_job = &report.jobs[es.0 as usize];
    let em_job = &report.jobs[em.0 as usize];
    assert_eq!(es_job.state, JobState::Done);
    assert_eq!(em_job.state, JobState::Done);
    assert_eq!(es_job.steps_done, 20);
    assert_eq!(em_job.steps_done, 20);

    // Each tenant kind reproduces its solo trajectory bit-exactly.
    let em_solo = {
        let mut cfg = em_cfg;
        cfg.threads = threads;
        let mut sim = EmSimulation::new(cfg).unwrap();
        sim.run(20);
        snapshot_hash(&sim.checkpoint())
    };
    assert_eq!(em_job.digest, Some(em_solo), "EM tenant diverged from solo");
    let es_solo = {
        let mut cfg = es_cfg;
        cfg.threads = threads;
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run(20);
        snapshot_hash(&sim.checkpoint())
    };
    assert_eq!(es_job.digest, Some(es_solo));

    // Every committed quantum fed the cost estimator.
    assert!(rt.estimator().samples() > 0, "no calibration samples");
}
