//! Integration of the cache simulator with the PIC kernels: the paper's
//! Table II / Fig. 5-6 claims, checked as assertions at reduced scale.

use pic2d::cachesim::{CacheConfig, Hierarchy, HierarchyConfig};
use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::pic_core::trace::{trace_accumulate, trace_update_velocities, MemoryMap};
use pic2d::sfc::Ordering;

/// The scaled geometry used by the Table II harness (see its header).
fn scaled_hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        levels: vec![
            CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                prefetch: true,
            },
            CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 64,
                prefetch: true,
            },
            CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                prefetch: true,
            },
        ],
    })
}

fn cfg(ordering: Ordering) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(60_000);
    cfg.ordering = ordering;
    cfg
}

/// Total (L1+L2) misses over `iters` iterations of the two traced loops.
fn misses(ordering: Ordering, iters: usize) -> (u64, u64) {
    let mut sim = Simulation::new(cfg(ordering)).unwrap();
    let map = MemoryMap::contiguous(0, 60_000, 128 * 128 * 2);
    let mut h = scaled_hierarchy();
    for _ in 0..iters {
        trace_update_velocities(sim.particles(), &map, &mut h);
        sim.step();
        trace_accumulate(sim.particles(), &map, &mut h);
    }
    (h.stats().level(0).misses(), h.stats().level(1).misses())
}

#[test]
fn morton_beats_row_major_on_cache_misses() {
    // The paper's central claim, at reduced scale: the Morton ordering
    // produces fewer misses than row-major in the update-velocities +
    // accumulate loops once particles have drifted.
    let (l1_rm, l2_rm) = misses(Ordering::RowMajor, 30);
    let (l1_mo, l2_mo) = misses(Ordering::Morton, 30);
    assert!(
        l1_mo + l2_mo < l1_rm + l2_rm,
        "Morton (L1 {l1_mo}, L2 {l2_mo}) should beat row-major (L1 {l1_rm}, L2 {l2_rm})"
    );
}

#[test]
fn l4d_beats_row_major_on_cache_misses() {
    let (l1_rm, l2_rm) = misses(Ordering::RowMajor, 30);
    let (l1_l4, l2_l4) = misses(Ordering::L4D(8), 30);
    assert!(
        l1_l4 + l2_l4 < l1_rm + l2_rm,
        "L4D (L1 {l1_l4}, L2 {l2_l4}) should beat row-major (L1 {l1_rm}, L2 {l2_rm})"
    );
}

#[test]
fn sorting_resets_the_miss_curve() {
    // Fig. 5's sawtooth: misses right after a sort are well below misses
    // right before it.
    let mut sim = Simulation::new(cfg(Ordering::Morton)).unwrap(); // sorts every 20
    let map = MemoryMap::contiguous(0, 60_000, 128 * 128 * 2);
    let mut h = scaled_hierarchy();
    let mut per_iter = Vec::new();
    for _ in 0..41 {
        let snap = h.stats().clone();
        trace_update_velocities(sim.particles(), &map, &mut h);
        sim.step();
        trace_accumulate(sim.particles(), &map, &mut h);
        let d = h.stats().delta(&snap);
        per_iter.push(d.level(0).misses() + d.level(1).misses());
    }
    // Iteration 19 (just before the sort at step 20) vs 21 (just after).
    assert!(
        per_iter[21] < per_iter[19],
        "post-sort misses {} should be below pre-sort {}",
        per_iter[21],
        per_iter[19]
    );
    // And the drift between sorts raises misses again.
    assert!(
        per_iter[39] > per_iter[21],
        "drift should raise misses: {} vs {}",
        per_iter[39],
        per_iter[21]
    );
}

#[test]
fn trace_volume_matches_particle_count() {
    // Each traced loop issues a fixed number of accesses per particle.
    let sim = Simulation::new(cfg(Ordering::RowMajor)).unwrap();
    let map = MemoryMap::contiguous(0, 60_000, 128 * 128 * 2);
    let mut h = scaled_hierarchy();
    trace_update_velocities(sim.particles(), &map, &mut h);
    let accesses = h.stats().level(0).accesses();
    // 8 accesses per particle (icell, dx, dy, e8, vx r/w, vy r/w); the e8
    // read may straddle one extra line.
    assert!(accesses >= 8 * 60_000);
    assert!(accesses <= 9 * 60_000);
}
