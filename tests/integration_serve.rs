//! Integration of the multi-tenant job runtime (`serve`): tenants sharing
//! one pool reproduce their solo trajectories bit-exactly, preemption and
//! fault containment (retry, quarantine, deadline, shed) isolate bad jobs
//! from healthy ones, the result cache serves identical resubmissions,
//! streamed diagnostics survive rollbacks untorn, and decomposed tenants
//! multiplex one minimpi world through disjoint tag blocks.

use pic2d::decomp::{DecompConfig, DecomposedSimulation};
use pic2d::minimpi::{job_tag_block, World};
use pic2d::pic_core::faultlog::FaultKind;
use pic2d::pic_core::resilience::checkpoint::snapshot_hash;
use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::serve::{FaultInjection, JobRuntime, JobSpec, JobState, RuntimeConfig};
use std::time::Duration;

fn small_cfg(seed: u64, n_particles: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n_particles);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 4;
    cfg.seed = seed;
    cfg
}

/// Digest of a solo, uninterrupted run of `cfg` at the given pool width —
/// the reference every tenant trajectory must reproduce exactly.
fn solo_digest(mut cfg: PicConfig, steps: u64, threads: usize) -> u64 {
    cfg.threads = threads;
    let mut sim = Simulation::new(cfg).unwrap();
    sim.run(steps as usize);
    snapshot_hash(&sim.checkpoint())
}

#[test]
fn multi_tenant_digests_match_solo() {
    let rcfg = RuntimeConfig {
        quantum_steps: 8,
        ..RuntimeConfig::default()
    };
    let threads = rcfg.threads;
    let mut rt = JobRuntime::new(rcfg);
    let specs = [(1u64, 20u64), (2, 12), (3, 28)];
    let ids: Vec<_> = specs
        .iter()
        .map(|&(seed, steps)| {
            rt.submit(JobSpec::new(
                format!("tenant-{seed}"),
                small_cfg(seed, 3_000),
                steps,
            ))
        })
        .collect();
    let report = rt.run();
    for (&(seed, steps), id) in specs.iter().zip(&ids) {
        let job = &report.jobs[id.0 as usize];
        assert_eq!(job.state, JobState::Done, "{}", job.name);
        assert_eq!(job.steps_done, steps);
        assert_eq!(
            job.digest,
            Some(solo_digest(small_cfg(seed, 3_000), steps, threads)),
            "{} diverged from its solo trajectory",
            job.name
        );
    }
    assert!(rt.ledger().count(FaultKind::Checkpoint) >= 3);
}

#[test]
fn short_arrival_preempts_long_job_bit_exactly() {
    let rcfg = RuntimeConfig {
        quantum_steps: 8,
        ..RuntimeConfig::default()
    };
    let threads = rcfg.threads;
    let mut rt = JobRuntime::new(rcfg);
    let long_cfg = small_cfg(11, 4_000);
    let short_cfg = small_cfg(12, 2_000);
    let long = rt.submit(JobSpec::new("long", long_cfg.clone(), 400));
    let short = rt.submit(
        JobSpec::new("short", short_cfg.clone(), 12).with_start_after(Duration::from_millis(5)),
    );
    let report = rt.run();
    let lj = &report.jobs[long.0 as usize];
    let sj = &report.jobs[short.0 as usize];
    assert_eq!(lj.state, JobState::Done);
    assert_eq!(sj.state, JobState::Done);
    assert!(lj.preemptions >= 1, "long job never yielded");
    assert!(
        lj.restores >= 1,
        "preemption must resume via the checkpoint"
    );
    assert!(
        sj.latency.unwrap() < lj.latency.unwrap(),
        "short arrival should finish first under SRTF"
    );
    assert_eq!(lj.digest, Some(solo_digest(long_cfg, 400, threads)));
    assert_eq!(sj.digest, Some(solo_digest(short_cfg, 12, threads)));
    assert!(rt.ledger().count(FaultKind::Preempt) >= 1);
}

#[test]
fn poison_job_quarantined_healthy_tenant_unperturbed() {
    let rcfg = RuntimeConfig {
        quantum_steps: 8,
        retry_base: Duration::from_millis(5),
        ..RuntimeConfig::default()
    };
    let threads = rcfg.threads;
    let mut rt = JobRuntime::new(rcfg);
    let healthy_cfg = small_cfg(21, 3_000);
    let poison = rt.submit(
        JobSpec::new("poison", small_cfg(22, 3_000), 20)
            .with_injection(FaultInjection::Poison { at_step: 4 }),
    );
    let healthy = rt.submit(JobSpec::new("healthy", healthy_cfg.clone(), 24));
    let report = rt.run();

    let pj = &report.jobs[poison.0 as usize];
    assert_eq!(pj.state, JobState::Quarantined);
    assert_eq!(
        pj.retries, 2,
        "third fault quarantines before a third retry"
    );
    assert!(pj.evidence.iter().any(|e| e.kind == FaultKind::Rollback));
    assert!(pj.evidence.iter().any(|e| e.kind == FaultKind::Quarantine));
    assert!(
        pj.evidence.iter().all(|e| e.job == Some(poison.0)),
        "evidence slice must contain only the quarantined tenant's events"
    );

    let hj = &report.jobs[healthy.0 as usize];
    assert_eq!(hj.state, JobState::Done);
    assert_eq!(hj.retries, 0);
    assert_eq!(
        hj.digest,
        Some(solo_digest(healthy_cfg, 24, threads)),
        "healthy tenant perturbed by a quarantined neighbour"
    );

    assert_eq!(report.quarantined_jobs, 1);
    assert!(rt.ledger().has_sequence(&[
        FaultKind::Rollback,
        FaultKind::Retry,
        FaultKind::Rollback,
        FaultKind::Quarantine,
    ]));
    // The merged multi-job ledger stays parseable and job-tagged.
    let json = rt.ledger().to_json();
    assert!(json.contains(&format!("\"job\": {}", poison.0)));
    assert!(json.contains(&format!("\"job\": {}", healthy.0)));
}

#[test]
fn kill_and_hang_jobs_recover_from_checkpoints() {
    let rcfg = RuntimeConfig {
        quantum_steps: 8,
        retry_base: Duration::from_millis(5),
        ..RuntimeConfig::default()
    };
    let threads = rcfg.threads;
    let mut rt = JobRuntime::new(rcfg);
    let kill_cfg = small_cfg(31, 3_000);
    let hang_cfg = small_cfg(32, 3_000);
    let kill = rt.submit(
        JobSpec::new("killed", kill_cfg.clone(), 24)
            .with_injection(FaultInjection::Kill { at_step: 10 }),
    );
    let hang = rt.submit(
        JobSpec::new("hung", hang_cfg.clone(), 24)
            .with_injection(FaultInjection::Hang {
                at_step: 6,
                millis: 150,
            })
            .with_slice_timeout(Duration::from_millis(50)),
    );
    let report = rt.run();
    for (id, cfg) in [(kill, &kill_cfg), (hang, &hang_cfg)] {
        let j = &report.jobs[id.0 as usize];
        assert_eq!(j.state, JobState::Done, "{}", j.name);
        assert!(j.retries >= 1, "{} recovered without a retry?", j.name);
        assert!(j.restores >= 1, "{} never restored a checkpoint", j.name);
        assert_eq!(
            j.digest,
            Some(solo_digest(cfg.clone(), 24, threads)),
            "{} diverged after recovery",
            j.name
        );
    }
    assert!(rt.ledger().count(FaultKind::Kill) >= 1);
    assert!(rt.ledger().count(FaultKind::Timeout) >= 1);
    assert!(rt.ledger().count(FaultKind::Restore) >= 2);
}

#[test]
fn blown_deadline_fails_before_scheduling() {
    let mut rt = JobRuntime::new(RuntimeConfig::default());
    let id = rt.submit(
        JobSpec::new("late", small_cfg(41, 2_000), 10).with_deadline(Duration::from_millis(1)),
    );
    std::thread::sleep(Duration::from_millis(5));
    let report = rt.run();
    let j = &report.jobs[id.0 as usize];
    assert_eq!(j.state, JobState::Failed);
    assert_eq!(
        j.steps_done, 0,
        "an overdue job must not burn executor time"
    );
    assert!(j.latency.is_some());
    let ev = rt.ledger().events_for_job(id.0);
    assert!(ev
        .iter()
        .any(|e| e.kind == FaultKind::Timeout && e.detail.contains("deadline")));
}

#[test]
fn overload_sheds_oldest_deadline_queued_job() {
    let rcfg = RuntimeConfig {
        max_active: 2,
        ..RuntimeConfig::default()
    };
    let mut rt = JobRuntime::new(rcfg);
    let a = rt.submit(
        JobSpec::new("slack", small_cfg(51, 2_000), 8).with_deadline(Duration::from_secs(10)),
    );
    let b = rt.submit(
        JobSpec::new("urgent", small_cfg(52, 2_000), 8).with_deadline(Duration::from_secs(1)),
    );
    let c = rt.submit(JobSpec::new("calm", small_cfg(53, 2_000), 8));
    let report = rt.run();
    assert_eq!(
        report.jobs[b.0 as usize].state,
        JobState::Shed,
        "the queued job with the oldest deadline is the eviction victim"
    );
    assert_eq!(report.jobs[a.0 as usize].state, JobState::Done);
    assert_eq!(report.jobs[c.0 as usize].state, JobState::Done);
    assert_eq!(report.shed_jobs, 1);
    assert_eq!(rt.ledger().count(FaultKind::Shed), 1);
    let ev = rt.ledger().events_for_job(b.0);
    assert!(ev.iter().any(|e| e.kind == FaultKind::Shed));
}

#[test]
fn identical_resubmission_served_from_cache() {
    let mut rt = JobRuntime::new(RuntimeConfig::default());
    let cfg = small_cfg(61, 2_500);
    let first = rt.submit(JobSpec::new("first", cfg.clone(), 16));
    rt.run();
    let second = rt.submit(JobSpec::new("second", cfg.clone(), 16));
    let other_steps = rt.submit(JobSpec::new("other", cfg.clone(), 8));
    let report = rt.run();
    let f = &report.jobs[first.0 as usize];
    let s = &report.jobs[second.0 as usize];
    let o = &report.jobs[other_steps.0 as usize];
    assert!(!f.cache_hit);
    assert_eq!(f.state, JobState::Done);
    assert!(
        s.cache_hit,
        "identical fingerprint+steps must hit the cache"
    );
    assert_eq!(s.state, JobState::Done);
    assert_eq!(s.digest, f.digest);
    assert_eq!(s.steps_done, 16);
    assert!(
        !o.cache_hit,
        "different step count is a different trajectory"
    );
    assert_eq!(o.state, JobState::Done);
    let (hits, misses) = rt.cache_stats();
    assert_eq!(hits, 1);
    assert!(misses >= 2);
}

#[test]
fn diagnostic_stream_is_complete_and_untorn_across_rollback() {
    let path = std::env::temp_dir().join(format!("serve_stream_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let rcfg = RuntimeConfig {
        quantum_steps: 8,
        retry_base: Duration::from_millis(2),
        ..RuntimeConfig::default()
    };
    let threads = rcfg.threads;
    let mut rt = JobRuntime::new(rcfg);
    let cfg = small_cfg(71, 2_500);
    let id = rt.submit(
        JobSpec::new("streamed", cfg.clone(), 20)
            .with_injection(FaultInjection::CorruptOnce { at_step: 16 })
            .with_stream(&path),
    );
    let report = rt.run();
    let j = &report.jobs[id.0 as usize];
    assert_eq!(j.state, JobState::Done);
    assert!(j.retries >= 1, "the corruption should cost one rollback");
    assert_eq!(
        j.digest,
        Some(solo_digest(cfg, 20, threads)),
        "a transient corruption must leave no trace in the trajectory"
    );

    // Every line is a complete record, and despite the replay of the
    // rolled-back quantum each step appears exactly once.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut seen = [0u32; 21];
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "torn record: {line}"
        );
        assert!(line.contains(&format!("\"job\": {}", id.0)));
        let step = line
            .split("\"step\": ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or_else(|| panic!("unparseable record: {line}"));
        seen[step] += 1;
    }
    for (step, &n) in seen.iter().enumerate().skip(1) {
        assert_eq!(n, 1, "step {step} recorded {n} times");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn decomp_tenants_with_tag_blocks_interleave_safely() {
    const STEPS: usize = 6;
    const RANKS: usize = 2;
    let cfg_a = small_cfg(81, 4_000);
    let cfg_b = small_cfg(82, 4_000);

    let (ca, cb) = (cfg_a.clone(), cfg_b.clone());
    let reports = World::run(RANKS, move |comm| {
        let da = DecompConfig {
            tag_block: job_tag_block(1),
            ..DecompConfig::default()
        };
        let db = DecompConfig {
            tag_block: job_tag_block(2),
            ..DecompConfig::default()
        };
        let mut a = DecomposedSimulation::new(ca.clone(), da, comm).unwrap();
        let mut b = DecomposedSimulation::new(cb.clone(), db, comm).unwrap();
        // Strictly interleaved stepping: without disjoint tag blocks the
        // two tenants' step tags would alias on the shared world.
        for _ in 0..STEPS {
            a.step(comm).unwrap();
            b.step(comm).unwrap();
        }
        let rho_a = a.sim().rho();
        let rho_b = b.sim().rho();
        (
            a.plan().owned_points.clone(),
            a.plan()
                .owned_points
                .iter()
                .map(|&p| rho_a[p])
                .collect::<Vec<_>>(),
            b.plan().owned_points.clone(),
            b.plan()
                .owned_points
                .iter()
                .map(|&p| rho_b[p])
                .collect::<Vec<_>>(),
        )
    });

    for (cfg, tenant) in [(cfg_a, 0usize), (cfg_b, 1)] {
        let mut serial = Simulation::new(cfg).unwrap();
        serial.run(STEPS);
        let rho_s = serial.rho();
        for (r, rep) in reports.iter().enumerate() {
            let (points, rho) = if tenant == 0 {
                (&rep.0, &rep.1)
            } else {
                (&rep.2, &rep.3)
            };
            for (&p, &v) in points.iter().zip(rho) {
                assert!(
                    (v - rho_s[p]).abs() < 1e-9,
                    "tenant {tenant} rank {r}: rho[{p}] {v} vs serial {}",
                    rho_s[p]
                );
            }
        }
    }
}
