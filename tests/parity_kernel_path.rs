//! Kernel-path parity: a simulation stepped on the lane-blocked SIMD path
//! must be *bit-identical* to the same simulation on the scalar path — same
//! ρ, same particle cells/offsets/velocities — across cell orderings,
//! thread counts, and particle counts that do and do not divide the lane
//! width. This is the contract that makes `KernelPath` a pure performance
//! knob: switching it (or autotuning over it) can never change physics.

use pic_core::sim::{KernelPath, PicConfig, Simulation};
use sfc::Ordering;

/// Run `cfg` for `steps` under both kernel paths and compare every
/// particle- and field-level output bit for bit.
fn assert_paths_bit_identical(mut cfg: PicConfig, steps: usize, what: &str) {
    cfg.kernel_path = KernelPath::Scalar;
    let mut scalar = Simulation::new(cfg.clone()).unwrap();
    cfg.kernel_path = KernelPath::Lanes;
    let mut lanes = Simulation::new(cfg).unwrap();

    scalar.run(steps);
    lanes.run(steps);

    let (rs, rl) = (scalar.rho(), lanes.rho());
    assert_eq!(rs.len(), rl.len(), "{what}: rho length");
    for i in 0..rs.len() {
        assert_eq!(
            rs[i].to_bits(),
            rl[i].to_bits(),
            "{what}: rho[{i}] differs: {} vs {}",
            rs[i],
            rl[i]
        );
    }

    let (ps, pl) = (scalar.particles(), lanes.particles());
    assert_eq!(ps.icell, pl.icell, "{what}: icell");
    assert_eq!(ps.ix, pl.ix, "{what}: ix");
    assert_eq!(ps.iy, pl.iy, "{what}: iy");
    for i in 0..ps.len() {
        assert_eq!(ps.dx[i].to_bits(), pl.dx[i].to_bits(), "{what}: dx[{i}]");
        assert_eq!(ps.dy[i].to_bits(), pl.dy[i].to_bits(), "{what}: dy[{i}]");
        assert_eq!(ps.vx[i].to_bits(), pl.vx[i].to_bits(), "{what}: vx[{i}]");
        assert_eq!(ps.vy[i].to_bits(), pl.vy[i].to_bits(), "{what}: vy[{i}]");
    }
}

/// Fully-optimized config at a small grid; `n` deliberately not a multiple
/// of the lane width in most tests.
fn cfg(n: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 3; // several sorts inside a short run
    cfg
}

#[test]
fn parity_across_orderings() {
    for ordering in Ordering::paper_set() {
        let mut c = cfg(1003);
        c.ordering = ordering;
        assert_paths_bit_identical(c, 7, &format!("ordering {ordering}"));
    }
}

#[test]
fn parity_with_thread_pool() {
    for threads in [1, 2, 3] {
        let mut c = cfg(2005);
        c.ordering = Ordering::Morton;
        c.threads = threads;
        assert_paths_bit_identical(c, 7, &format!("threads {threads}"));
    }
}

#[test]
fn parity_at_lane_edge_counts() {
    // Below one lane block, exactly one block, one block plus a tail.
    for n in [1, 5, 8, 9, 1003] {
        assert_paths_bit_identical(cfg(n), 5, &format!("n {n}"));
    }
}

#[test]
fn parity_on_baseline_row_major() {
    // The baseline config exercises the non-redundant/standard dispatch
    // (where the lane path only affects the branchless position update).
    let mut c = PicConfig::baseline(777);
    c.grid_nx = 32;
    c.grid_ny = 32;
    assert_paths_bit_identical(c, 5, "baseline");
}
