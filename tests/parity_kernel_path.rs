//! Kernel-path parity: a simulation stepped on the lane-blocked SIMD path
//! must be *bit-identical* to the same simulation on the scalar path — same
//! ρ, same particle cells/offsets/velocities — across cell orderings,
//! thread counts, and particle counts that do and do not divide the lane
//! width. This is the contract that makes `KernelPath` a pure performance
//! knob: switching it (or autotuning over it) can never change physics.

use pic_core::sim::{KernelPath, PicConfig, Simulation};
use sfc::Ordering;

/// Run `cfg` for `steps` under both kernel paths and compare every
/// particle- and field-level output bit for bit.
fn assert_paths_bit_identical(mut cfg: PicConfig, steps: usize, what: &str) {
    cfg.kernel_path = KernelPath::Scalar;
    let mut scalar = Simulation::new(cfg.clone()).unwrap();
    cfg.kernel_path = KernelPath::Lanes;
    let mut lanes = Simulation::new(cfg).unwrap();

    scalar.run(steps);
    lanes.run(steps);

    let (rs, rl) = (scalar.rho(), lanes.rho());
    assert_eq!(rs.len(), rl.len(), "{what}: rho length");
    for i in 0..rs.len() {
        assert_eq!(
            rs[i].to_bits(),
            rl[i].to_bits(),
            "{what}: rho[{i}] differs: {} vs {}",
            rs[i],
            rl[i]
        );
    }

    let (ps, pl) = (scalar.particles(), lanes.particles());
    assert_eq!(ps.icell, pl.icell, "{what}: icell");
    assert_eq!(ps.ix, pl.ix, "{what}: ix");
    assert_eq!(ps.iy, pl.iy, "{what}: iy");
    for i in 0..ps.len() {
        assert_eq!(ps.dx[i].to_bits(), pl.dx[i].to_bits(), "{what}: dx[{i}]");
        assert_eq!(ps.dy[i].to_bits(), pl.dy[i].to_bits(), "{what}: dy[{i}]");
        assert_eq!(ps.vx[i].to_bits(), pl.vx[i].to_bits(), "{what}: vx[{i}]");
        assert_eq!(ps.vy[i].to_bits(), pl.vy[i].to_bits(), "{what}: vy[{i}]");
    }
}

/// Fully-optimized config at a small grid; `n` deliberately not a multiple
/// of the lane width in most tests.
fn cfg(n: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 3; // several sorts inside a short run
    cfg
}

#[test]
fn parity_across_orderings() {
    for ordering in Ordering::paper_set() {
        let mut c = cfg(1003);
        c.ordering = ordering;
        assert_paths_bit_identical(c, 7, &format!("ordering {ordering}"));
    }
}

#[test]
fn parity_with_thread_pool() {
    for threads in [1, 2, 3] {
        let mut c = cfg(2005);
        c.ordering = Ordering::Morton;
        c.threads = threads;
        assert_paths_bit_identical(c, 7, &format!("threads {threads}"));
    }
}

#[test]
fn parity_at_lane_edge_counts() {
    // Below one lane block, exactly one block, one block plus a tail.
    for n in [1, 5, 8, 9, 1003] {
        assert_paths_bit_identical(cfg(n), 5, &format!("n {n}"));
    }
}

#[test]
fn parity_on_baseline_row_major() {
    // The baseline config exercises the non-redundant/standard dispatch
    // (where the lane path only affects the branchless position update).
    let mut c = PicConfig::baseline(777);
    c.grid_nx = 32;
    c.grid_ny = 32;
    assert_paths_bit_identical(c, 5, "baseline");
}

// ---------------------------------------------------------------------------
// DepositPath parity: the deposition-kernel knob must likewise never change
// physics beyond its documented contract — `Exact` stays bit-identical to
// the scalar accumulation order, and the reassociated paths (`LaneReduce`,
// `SortedBlock`) stay within a tight tolerance of the exact result at the
// simulation level and within the proven per-cell FP bound at the kernel
// level.
// ---------------------------------------------------------------------------

use pic_core::kernels::{accumulate, deposit};
use pic_core::rng::Rng;
use pic_core::sim::{DepositPath, ParticleLayout};

/// {AoS, SoA} x {1, 2, 4 threads} x {sorted, unsorted}: under every combo,
/// `Exact` is bit-identical between the scalar and lane kernel paths, and
/// each reassociated path tracks the exact run to a loose per-cell
/// tolerance (the per-deposit FP bound fed back through the field solve for
/// a handful of steps).
#[test]
fn deposit_path_matrix() {
    for layout in [ParticleLayout::Soa, ParticleLayout::Aos] {
        for threads in [1usize, 2, 4] {
            for sorted in [true, false] {
                let make = |dp: DepositPath| {
                    let mut c = cfg(1511);
                    c.ordering = Ordering::Morton;
                    c.particle_layout = layout;
                    c.threads = threads;
                    // Sorted: re-sort every step so the deposit always sees
                    // long same-cell runs. Unsorted: never sort, so drift
                    // scrambles the cell order the kernels walk.
                    c.sort_period = if sorted { 1 } else { 0 };
                    c.deposit_path = dp;
                    c
                };
                let what = format!("{layout:?} threads={threads} sorted={sorted}");

                // Exact deposit: scalar vs lane kernel paths, bit for bit.
                assert_paths_bit_identical(make(DepositPath::Exact), 5, &what);

                // Reassociated deposits track the exact run closely.
                let mut exact = Simulation::new(make(DepositPath::Exact)).unwrap();
                exact.run(5);
                for dp in [DepositPath::LaneReduce, DepositPath::SortedBlock] {
                    let mut sim = Simulation::new(make(dp)).unwrap();
                    sim.run(5);
                    let (re, rr) = (exact.rho(), sim.rho());
                    for i in 0..re.len() {
                        assert!(
                            (re[i] - rr[i]).abs() < 1e-9,
                            "{what} {dp:?}: rho[{i}] drifted: {} vs {}",
                            rr[i],
                            re[i]
                        );
                    }
                }
            }
        }
    }
}

/// Kernel-level bound at full scale: 1M particles on a 128x128 grid
/// (~61 per cell), sorted and unsorted. Every reassociated path lands
/// within the per-cell bound `4 k^2 eps |w|` (k = particles in the cell)
/// of the exact scalar accumulation — the bound proven in
/// `crates/core/src/kernels/deposit.rs`.
#[test]
fn reassociated_deposit_within_cell_bound_at_1m() {
    const N: usize = 1_000_000;
    const NCELLS: usize = 128 * 128;
    let mut rng = Rng::seed_from_u64(0xdeb0);
    let mut icell: Vec<u32> = (0..N).map(|_| rng.below(NCELLS as u64) as u32).collect();
    let dx: Vec<f64> = (0..N).map(|_| rng.uniform()).collect();
    let dy: Vec<f64> = (0..N).map(|_| rng.uniform()).collect();
    let w = 0.37;

    for sorted in [false, true] {
        if sorted {
            icell.sort_unstable();
        }
        let mut reference = vec![[0.0f64; 4]; NCELLS];
        accumulate::accumulate_redundant(&icell, &dx, &dy, &mut reference, w);
        let mut counts = vec![0u64; NCELLS];
        for &c in &icell {
            counts[c as usize] += 1;
        }
        let kernels: [(&str, deposit::DepositFn); 2] = [
            ("lane_reduce", deposit::accumulate_lane_reduce),
            ("sorted_block", deposit::accumulate_sorted_block),
        ];
        for (name, kernel) in kernels {
            let mut got = vec![[0.0f64; 4]; NCELLS];
            kernel(&icell, &dx, &dy, &mut got, w);
            for c in 0..NCELLS {
                let k = counts[c] as f64;
                let bound = 4.0 * k * k * f64::EPSILON * w.abs();
                for corner in 0..4 {
                    let d = (got[c][corner] - reference[c][corner]).abs();
                    assert!(
                        d <= bound,
                        "{name} sorted={sorted} cell={c} corner={corner}: \
                         |diff| {d:e} exceeds bound {bound:e} (k={k})"
                    );
                }
            }
        }
    }
}
