//! Bit-exactness of the parallel and distributed Poisson solve paths.
//!
//! The pool-parallel (`solve_e_pooled`) and slab-distributed
//! (`SlabSolver::solve`) pipelines replicate the serial solver's exact
//! per-1-D-transform value sequences and per-mode spectral scale, so their
//! output is not merely close to the sequential `PoissonSolver2D` — it is
//! the same bits. These tests assert `to_bits` equality across thread
//! counts, rank counts, and SFC orderings, and that checkpoints cross
//! solver modes without perturbing the trajectory.

use pic2d::decomp::{DecompConfig, DecomposedSimulation, SlabSolver, SolverMode};
use pic2d::minimpi::World;
use pic2d::pic_core::pool::ThreadPool;
use pic2d::pic_core::rng::Rng;
use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::sfc::Ordering;
use pic2d::spectral::poisson::{PoissonSolver2D, SolveScratch};

const NX: usize = 32;
const NY: usize = 32;
const LX: f64 = 4.0 * std::f64::consts::PI;
const LY: f64 = 4.0 * std::f64::consts::PI;

/// A deterministic, structure-rich density: random per-point values from
/// the in-repo PRNG (every caller regenerates the same field).
fn test_rho(seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..NX * NY).map(|_| rng.range(-1.0, 1.0)).collect()
}

fn serial_solution(rho: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let solver = PoissonSolver2D::new(NX, NY, LX, LY).unwrap();
    let (mut ex, mut ey) = (vec![0.0; NX * NY], vec![0.0; NX * NY]);
    let mut scratch = SolveScratch::new();
    solver.solve_e_with(rho, &mut ex, &mut ey, &mut scratch);
    (ex, ey)
}

#[test]
fn pooled_solve_bit_exact_across_thread_counts() {
    let solver = PoissonSolver2D::new(NX, NY, LX, LY).unwrap();
    let mut scratch = SolveScratch::new();
    for case in 0..8u64 {
        let rho = test_rho(0x9001 ^ case);
        let (ex_s, ey_s) = serial_solution(&rho);
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads);
            let (mut ex, mut ey) = (vec![0.0; NX * NY], vec![0.0; NX * NY]);
            solver.solve_e_pooled(&rho, &mut ex, &mut ey, &mut scratch, &pool);
            for i in 0..NX * NY {
                assert_eq!(
                    ex[i].to_bits(),
                    ex_s[i].to_bits(),
                    "case={case} threads={threads} ex[{i}]"
                );
                assert_eq!(
                    ey[i].to_bits(),
                    ey_s[i].to_bits(),
                    "case={case} threads={threads} ey[{i}]"
                );
            }
        }
    }
}

#[test]
fn slab_solve_bit_exact_across_ranks_and_orderings() {
    use pic2d::decomp::{HaloPlan, Partition};
    for ord in [Ordering::Morton, Ordering::Hilbert] {
        for ranks in [1usize, 2, 4] {
            let rho = test_rho(0x51ab ^ ranks as u64);
            let (ex_s, ey_s) = serial_solution(&rho);
            let out = World::run(ranks, move |comm| {
                let part = Partition::new(ord, NX, NY, comm.size()).unwrap();
                let plans: Vec<HaloPlan> = (0..comm.size())
                    .map(|r| HaloPlan::build(&part, r, 2))
                    .collect();
                let all_owned: Vec<Vec<usize>> =
                    plans.iter().map(|p| p.owned_points.clone()).collect();
                let all_e: Vec<Vec<usize>> = plans.iter().map(|p| p.e_points.clone()).collect();
                let mut slab =
                    SlabSolver::new(NX, NY, LX, LY, comm.rank(), comm.size(), &all_owned, &all_e)
                        .unwrap();
                let rho = test_rho(0x51ab ^ comm.size() as u64);
                let (mut ex, mut ey) = (vec![0.0; NX * NY], vec![0.0; NX * NY]);
                slab.solve(comm, &rho, &mut ex, &mut ey, 700).unwrap();
                let me = comm.rank();
                let pts = all_e[me].clone();
                let exv: Vec<u64> = pts.iter().map(|&p| ex[p].to_bits()).collect();
                let eyv: Vec<u64> = pts.iter().map(|&p| ey[p].to_bits()).collect();
                (pts, exv, eyv)
            });
            for (r, (pts, exv, eyv)) in out.iter().enumerate() {
                assert!(!pts.is_empty(), "{ord} ranks={ranks} rank={r}: no E points");
                for ((&p, &xb), &yb) in pts.iter().zip(exv).zip(eyv) {
                    assert_eq!(
                        xb,
                        ex_s[p].to_bits(),
                        "{ord} ranks={ranks} rank={r} ex[{p}]"
                    );
                    assert_eq!(
                        yb,
                        ey_s[p].to_bits(),
                        "{ord} ranks={ranks} rank={r} ey[{p}]"
                    );
                }
            }
        }
    }
}

fn sim_cfg(threads: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(4_000);
    cfg.grid_nx = NX;
    cfg.grid_ny = NY;
    cfg.sort_period = 2;
    cfg.threads = threads;
    cfg
}

/// A serial-solver snapshot must restore into a pool-parallel run: the
/// checkpoint fingerprint covers physics and partition, never the solver
/// parallelism. The restored state is bit-identical, and the continued
/// trajectory agrees to 1e-9 (the pooled *solve* is bit-exact; only the
/// pool-parallel deposit's summation order separates the runs).
#[test]
fn serial_snapshot_restores_into_pooled_run() {
    let mut serial = Simulation::new(sim_cfg(1)).unwrap();
    serial.run(4);
    let snap = serial.checkpoint();

    let mut pooled = Simulation::new(sim_cfg(4)).unwrap();
    pooled.restore(&snap).expect("cross-thread-count restore");

    // The restored state itself is the snapshot, bit for bit.
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(serial.rho()), bits(pooled.rho()), "restored rho");
    assert_eq!(
        serial.particles().icell,
        pooled.particles().icell,
        "restored particle cells"
    );

    serial.run(3);
    pooled.run(3);

    assert_eq!(
        serial.particles().icell,
        pooled.particles().icell,
        "particle cells diverged"
    );
    let close = |a: &[f64], b: &[f64], what: &str| {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "{what}[{i}]: {x} vs {y}");
        }
    };
    close(serial.rho(), pooled.rho(), "rho");
    let (ex_s, ey_s) = serial.e_field();
    let (ex_p, ey_p) = pooled.e_field();
    close(ex_s, ex_p, "ex");
    close(ey_s, ey_p, "ey");
}

/// A snapshot taken under the root-gather solver restores into a
/// slab-distributed run of the same partition and continues bit-exactly —
/// both modes feed the identical assembled density through bit-identical
/// spectral pipelines.
#[test]
fn root_gather_snapshot_restores_bit_exact_into_slab_run() {
    let ranks = 2;
    let cfg = || {
        let mut c = PicConfig::landau_table1(4_000);
        c.grid_nx = NX;
        c.grid_ny = NY;
        c.sort_period = 2;
        c
    };
    let out = World::run(ranks, move |comm| {
        let root_cfg = DecompConfig {
            solver: SolverMode::RootGather,
            ..DecompConfig::default()
        };
        let mut a = DecomposedSimulation::new(cfg(), root_cfg, comm).unwrap();
        a.run(4, comm).unwrap();
        let snap = a.checkpoint();
        a.run(3, comm).unwrap();

        let mut b = DecomposedSimulation::new(cfg(), DecompConfig::default(), comm).unwrap();
        assert!(matches!(
            b.partition().range(comm.rank()),
            r if r == a.partition().range(comm.rank())
        ));
        b.restore(&snap).expect("cross-solver-mode restore");
        b.run(3, comm).unwrap();

        let bits = |v: &[f64], pts: &[usize]| -> Vec<u64> {
            pts.iter().map(|&p| v[p].to_bits()).collect()
        };
        let pts_o = a.plan().owned_points.clone();
        let pts_e = a.plan().e_points.clone();
        let rho_a = bits(a.sim().rho(), &pts_o);
        let rho_b = bits(b.sim().rho(), &pts_o);
        let (ex_a, ey_a) = a.sim().e_field();
        let (ex_b, ey_b) = b.sim().e_field();
        (
            rho_a == rho_b,
            bits(ex_a, &pts_e) == bits(ex_b, &pts_e),
            bits(ey_a, &pts_e) == bits(ey_b, &pts_e),
            a.sim().particles().icell == b.sim().particles().icell,
        )
    });
    for (r, &(rho_ok, ex_ok, ey_ok, parts_ok)) in out.iter().enumerate() {
        assert!(rho_ok, "rank {r}: rho diverged across solver modes");
        assert!(ex_ok, "rank {r}: ex diverged across solver modes");
        assert!(ey_ok, "rank {r}: ey diverged across solver modes");
        assert!(parts_ok, "rank {r}: particles diverged across solver modes");
    }
}

/// End-to-end: a decomposed run under each solver mode stays within 1e-9
/// of the serial trajectory (the modes are bit-identical to each other;
/// only the halo summation order separates them from serial).
#[test]
fn solver_modes_produce_identical_decomposed_trajectories() {
    let mk = |mode: SolverMode| {
        World::run(4, move |comm| {
            let dcfg = DecompConfig {
                solver: mode,
                ..DecompConfig::default()
            };
            let mut d = DecomposedSimulation::new(sim_cfg(1), dcfg, comm).unwrap();
            d.run(5, comm).unwrap();
            let rho = d.sim().rho();
            let pts = d.plan().owned_points.clone();
            let vals: Vec<u64> = pts.iter().map(|&p| rho[p].to_bits()).collect();
            (pts, vals, d.local_particles())
        })
    };
    let slab = mk(SolverMode::Slab);
    let root = mk(SolverMode::RootGather);
    let mut total = 0usize;
    for (r, (s, g)) in slab.iter().zip(&root).enumerate() {
        assert_eq!(s.0, g.0, "rank {r}: owned points differ");
        assert_eq!(s.1, g.1, "rank {r}: owned rho differs between modes");
        assert_eq!(s.2, g.2, "rank {r}: particle count differs");
        total += s.2;
    }
    assert_eq!(total, 4_000, "particle count not conserved");
}
