//! Steady-state allocation audit: after warm-up, `Simulation::step` must
//! perform ZERO heap allocations — including steps that sort and steps on
//! the pooled multi-threaded path. This pins down the point of the
//! persistent pool / arena work: per-worker ρ arenas, the sort arena, the
//! spectral solve scratch, and the stack-array fork-join views mean the
//! hot loop never touches the allocator once the first sort period has
//! populated every scratch buffer.
//!
//! Mechanism: a counting `#[global_allocator]` that forwards to the system
//! allocator and, while the `TRACK` flag is up, counts every allocation
//! from any thread. The single test body serializes its phases so nothing
//! else in the process can allocate while tracking is on.

use pic_core::sim::{KernelPath, PicConfig, Simulation};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static TRACK: AtomicBool = AtomicBool::new(false);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing Vec shows up here, not in `alloc` — count it too.
        if TRACK.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Build a fully-optimized simulation, warm it past its first sort period,
/// then count allocator calls over two further sort periods.
fn steady_state_allocs(threads: usize, path: KernelPath) -> u64 {
    let mut cfg = PicConfig::landau_table1(20_000);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.threads = threads;
    cfg.sort_period = 5;
    cfg.kernel_path = path;
    let mut sim = Simulation::new(cfg).unwrap();

    // Measure two full sort periods. Warm-up first: at least one sort
    // (fills the sort arena, per-worker ρ arenas, and the spectral
    // scratch), plus history capacity for everything still to come.
    let measured = 2 * 5;
    sim.reserve_diagnostics(measured + 16);
    sim.run(7);

    ALLOC_CALLS.store(0, Ordering::SeqCst);
    TRACK.store(true, Ordering::SeqCst);
    sim.run(measured);
    TRACK.store(false, Ordering::SeqCst);
    ALLOC_CALLS.load(Ordering::SeqCst)
}

#[test]
fn step_is_allocation_free_after_warmup() {
    // One test body: phases must not interleave with other allocating
    // tests, and a single #[test] in this binary guarantees that.
    for (threads, path) in [
        (1, KernelPath::Scalar),
        (1, KernelPath::Lanes),
        (2, KernelPath::Lanes),
    ] {
        let n = steady_state_allocs(threads, path);
        assert_eq!(
            n, 0,
            "steady-state step allocated {n} times (threads={threads}, {path:?})"
        );
    }
}
