//! Integration of `minimpi` with the PIC loop: the paper's process-level
//! parallelism (§V-A) must be *exactly* equivalent to a serial run — the
//! global particle population is split across ranks, each deposits its
//! slice, and the allreduce of ρ reconstitutes the serial density
//! bit-for-bit (floating-point addition order is the only difference, and
//! the counting-sorted deposition keeps it tolerable).

use pic2d::minimpi::World;
use pic2d::pic_core::sim::{PicConfig, Simulation};

fn cfg(n: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 0; // keep particle order identical across variants
    cfg
}

#[test]
fn distributed_run_matches_serial() {
    let n = 4_000;
    let steps = 5;

    // Serial reference.
    let mut serial = Simulation::new(cfg(n)).unwrap();
    serial.run(steps);
    let rho_serial = serial.rho().to_vec();

    // Distributed: 4 ranks × 1000 particles, allreduce each step.
    for ranks in [2usize, 4] {
        let per = n / ranks;
        let rhos = World::run(ranks, |comm| {
            let mut c = cfg(n);
            let r = comm.rank();
            c.keep_range = Some((r * per, (r + 1) * per));
            let mut sim = Simulation::new_with_reduce(c, |rho| comm.allreduce_sum(rho)).unwrap();
            for _ in 0..steps {
                sim.step_with_reduce(|rho| comm.allreduce_sum(rho));
            }
            sim.rho().to_vec()
        });
        for (rank, rho) in rhos.iter().enumerate() {
            for i in 0..rho_serial.len() {
                assert!(
                    (rho[i] - rho_serial[i]).abs() < 1e-9,
                    "ranks={ranks} rank={rank}: rho[{i}] {} vs serial {}",
                    rho[i],
                    rho_serial[i]
                );
            }
        }
    }
}

#[test]
fn tree_allreduce_matches_flat_in_the_pic_loop() {
    let n = 2_000;
    let steps = 3;
    let per = n / 2;

    let run = |tree: bool| {
        World::run(2, move |comm| {
            let mut c = cfg(n);
            let r = comm.rank();
            c.keep_range = Some((r * per, (r + 1) * per));
            let mut sim = Simulation::new_with_reduce(c, |rho| comm.allreduce_sum(rho)).unwrap();
            for step in 0..steps {
                sim.step_with_reduce(|rho| {
                    if tree {
                        comm.allreduce_sum_tree(rho, step as u64 * 10_000);
                    } else {
                        comm.allreduce_sum(rho);
                    }
                });
            }
            sim.rho().to_vec()
        })
    };
    let flat = run(false);
    let tree = run(true);
    for i in 0..flat[0].len() {
        assert!((flat[0][i] - tree[0][i]).abs() < 1e-9, "rho[{i}]");
    }
}

#[test]
fn ranks_agree_with_each_other() {
    // Every rank holds the whole grid: after the allreduce they all see
    // the same field, so their diagnostics must agree exactly.
    let n = 3_000;
    let per = n / 3;
    let modes = World::run(3, |comm| {
        let mut c = cfg(n);
        let r = comm.rank();
        c.keep_range = Some((r * per, (r + 1) * per));
        let mut sim = Simulation::new_with_reduce(c, |rho| comm.allreduce_sum(rho)).unwrap();
        for _ in 0..4 {
            sim.step_with_reduce(|rho| comm.allreduce_sum(rho));
        }
        sim.ex_mode_amplitude(1)
    });
    assert!((modes[0] - modes[1]).abs() < 1e-12);
    assert!((modes[1] - modes[2]).abs() < 1e-12);
}

#[test]
fn comm_time_grows_with_payload() {
    // Sanity check of the communication accounting used by Fig. 7.
    let (_, comm_small) = World::run_timed(4, |comm| {
        let mut v = vec![0.0; 64];
        for _ in 0..200 {
            comm.allreduce_sum(&mut v);
        }
    });
    let (_, comm_large) = World::run_timed(4, |comm| {
        let mut v = vec![0.0; 1 << 18];
        for _ in 0..200 {
            comm.allreduce_sum(&mut v);
        }
    });
    assert!(
        comm_large > comm_small,
        "large payload {comm_large} should cost more than {comm_small}"
    );
}
