//! Cross-crate integration tests: the full PIC loop (pic-core + spectral +
//! sfc) must produce identical physics for every data-structure
//! configuration, and correct plasma physics overall.

use pic2d::pic_core::sim::{
    FieldLayout, LoopStructure, ParticleLayout, PicConfig, PositionUpdate, Simulation,
};
use pic2d::sfc::Ordering;

fn base_cfg(n: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg
}

fn rho_after(cfg: PicConfig, steps: usize) -> Vec<f64> {
    let mut sim = Simulation::new(cfg).unwrap();
    sim.run(steps);
    sim.rho().to_vec()
}

#[test]
fn every_configuration_computes_the_same_physics() {
    // The paper's whole premise: the optimizations change performance, not
    // results. 2 orderings × 2 particle layouts × 2 loop structures × 2
    // position updates must agree on ρ after 4 steps.
    let reference = rho_after(base_cfg(2_000), 4);
    for ordering in [Ordering::RowMajor, Ordering::Morton] {
        for pl in [ParticleLayout::Soa, ParticleLayout::Aos] {
            for ls in [LoopStructure::Split, LoopStructure::Fused] {
                for pu in [PositionUpdate::Branchless, PositionUpdate::NaiveIf] {
                    if ls == LoopStructure::Fused && ordering != Ordering::RowMajor {
                        continue; // unsupported combination (validated away)
                    }
                    let mut cfg = base_cfg(2_000);
                    cfg.ordering = ordering;
                    cfg.particle_layout = pl;
                    cfg.loop_structure = ls;
                    cfg.position_update = pu;
                    let rho = rho_after(cfg, 4);
                    for i in 0..reference.len() {
                        assert!(
                            (rho[i] - reference[i]).abs() < 1e-8,
                            "{ordering} {pl:?} {ls:?} {pu:?}: rho[{i}] = {} vs {}",
                            rho[i],
                            reference[i]
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn standard_field_layout_agrees_with_redundant() {
    let mut a = base_cfg(2_000);
    a.ordering = Ordering::RowMajor;
    a.field_layout = FieldLayout::Standard;
    a.hoisted = false;
    let mut b = base_cfg(2_000);
    b.ordering = Ordering::RowMajor;
    b.field_layout = FieldLayout::Redundant;
    b.hoisted = false;
    let ra = rho_after(a, 4);
    let rb = rho_after(b, 4);
    for i in 0..ra.len() {
        assert!((ra[i] - rb[i]).abs() < 1e-9, "rho[{i}]");
    }
}

#[test]
fn l4d_tile_size_does_not_change_physics() {
    let reference = rho_after(base_cfg(1_500), 3);
    for size in [4usize, 8, 16] {
        let mut cfg = base_cfg(1_500);
        cfg.ordering = Ordering::L4D(size);
        let rho = rho_after(cfg, 3);
        for i in 0..reference.len() {
            assert!((rho[i] - reference[i]).abs() < 1e-9, "SIZE={size} rho[{i}]");
        }
    }
}

#[test]
fn landau_damping_rate_matches_theory() {
    // γ ≈ −0.1533 for k = 0.5 — the validation the paper cites (§IV).
    let mut cfg = PicConfig::landau_table1(400_000);
    cfg.grid_nx = 64;
    cfg.grid_ny = 16;
    cfg.dt = 0.05;
    let mut sim = Simulation::new(cfg).unwrap();
    sim.run(240); // t = 12
    let gamma = sim.diagnostics().mode_envelope_rate(0.0, 11.0).unwrap();
    let theory = pic2d::spectral::dispersion::landau_damping_rate(0.5).unwrap();
    assert!(
        (gamma - theory).abs() < 0.06,
        "measured Landau rate {gamma}, Z-function theory {theory}"
    );
}

#[test]
fn two_stream_grows() {
    let mut cfg = PicConfig::two_stream(100_000);
    cfg.grid_nx = 64;
    cfg.grid_ny = 16;
    cfg.dt = 0.05;
    let mut sim = Simulation::new(cfg).unwrap();
    sim.run(400); // t = 20
    let h = &sim.diagnostics().history;
    assert!(
        h[400].ex_mode > 10.0 * h[0].ex_mode,
        "two-stream mode must grow: {} -> {}",
        h[0].ex_mode,
        h[400].ex_mode
    );
}

#[test]
fn total_energy_is_conserved() {
    let mut cfg = base_cfg(30_000);
    cfg.dt = 0.05;
    let mut sim = Simulation::new(cfg).unwrap();
    sim.run(100);
    let drift = sim.diagnostics().relative_energy_drift();
    assert!(drift < 0.01, "energy drift {drift}");
}

#[test]
fn momentum_stays_near_zero() {
    // A symmetric Maxwellian carries no net momentum; the self-consistent
    // field must not create any (up to sampling noise).
    let mut cfg = base_cfg(50_000);
    cfg.distribution = pic2d::pic_core::particles::InitialDistribution::Uniform;
    let mut sim = Simulation::new(cfg).unwrap();
    let px0: f64 = sim.particles().vx.iter().sum();
    sim.run(20);
    let px: f64 = sim.particles().vx.iter().sum();
    let n = sim.particles().vx.len() as f64;
    // Velocities are grid-units/step here; compare drift per particle.
    assert!(
        ((px - px0) / n).abs() < 1e-3,
        "net momentum drift per particle: {}",
        (px - px0) / n
    );
}
