//! End-to-end resilience: the fault-injected `minimpi` transport inside
//! the real PIC loop, checkpoint/restart bit-exactness for both particle
//! layouts, snapshot integrity checking, and the invariant watchdog.

use pic2d::minimpi::{CommError, FaultPlan, World};
use pic2d::pic_core::faultlog::{FaultKind, FaultLog};
use pic2d::pic_core::resilience::checkpoint::config_fingerprint;
use pic2d::pic_core::resilience::{
    run_resilient, run_resilient_distributed, DistConfig, WatchdogConfig,
};
use pic2d::pic_core::sim::{KernelPath, ParticleLayout, PicConfig, Simulation};
use pic2d::pic_core::PicError;
use std::collections::BTreeMap;
use std::time::Duration;

fn cfg(n: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(n);
    cfg.grid_nx = 32;
    cfg.grid_ny = 32;
    cfg.sort_period = 0; // keep particle order identical across variants
    cfg
}

// ---------------- fault-injected distributed runs ----------------

/// The acceptance scenario: four ranks run the PIC loop over a lossy,
/// corrupting link; the reliable transport must recover via retransmission
/// and produce exactly the ρ of the fault-free run.
#[test]
fn four_rank_fault_injected_run_matches_fault_free() {
    let n = 2_000;
    let steps = 3;
    let ranks = 4;
    let per = n / ranks;

    let run = |plan: Option<FaultPlan>| -> Vec<Vec<f64>> {
        let body = move |comm: &mut pic2d::minimpi::Comm| {
            let mut c = cfg(n);
            let r = comm.rank();
            c.keep_range = Some((r * per, (r + 1) * per));
            // The tree allreduce everywhere: its fixed pairing makes the
            // floating-point summation order (and hence ρ) identical from
            // run to run, unlike the flat shared-accumulator reduction,
            // whose addition order follows thread arrival.
            let mut sim = Simulation::new_with_reduce(c, |rho| {
                comm.try_allreduce_sum_tree(rho, 1 << 40).unwrap()
            })
            .unwrap();
            for step in 0..steps {
                sim.step_with_reduce(|rho| {
                    comm.try_allreduce_sum_tree(rho, step as u64 * 10_000)
                        .expect("recoverable fault rates must not surface errors")
                });
            }
            sim.rho().to_vec()
        };
        match plan {
            Some(p) => World::run_with_faults(ranks, p, body),
            None => World::run(ranks, body),
        }
    };

    let clean = run(None);
    let faulty = run(Some(
        FaultPlan::new(0xf417)
            .drop_messages(0.25)
            .corrupt_messages(0.15)
            .delay_messages(0.10, Duration::from_micros(200)),
    ));
    for (rank, rho) in faulty.iter().enumerate() {
        assert_eq!(
            rho, &clean[rank],
            "rank {rank}: retransmission must reconstruct the exact density"
        );
    }
}

/// An unrecoverable plan (every frame dropped) must surface a clean
/// `CommError` on every rank — no deadlock, no panic.
#[test]
fn unrecoverable_faults_error_out_instead_of_deadlocking() {
    let outcomes = World::run_with_faults(4, FaultPlan::always_drop(9), |comm| {
        comm.set_ack_timeout(Duration::from_millis(2));
        comm.set_recv_deadline(Duration::from_millis(200));
        comm.set_max_retries(3);
        let mut v = vec![comm.rank() as f64; 8];
        comm.try_allreduce_sum_tree(&mut v, 0)
    });
    for (rank, out) in outcomes.iter().enumerate() {
        let err = out.as_ref().expect_err("all frames dropped");
        assert!(
            matches!(
                err,
                CommError::RetriesExhausted { .. } | CommError::Timeout { .. }
            ),
            "rank {rank}: unexpected error {err}"
        );
    }
}

// ---------------- checkpoint / restart ----------------

/// Checkpoint → restore → continue must be bit-identical to an
/// uninterrupted run, for both particle layouts.
#[test]
fn checkpoint_roundtrip_is_bit_exact_for_both_layouts() {
    for layout in [ParticleLayout::Aos, ParticleLayout::Soa] {
        let mut c = cfg(3_000);
        c.particle_layout = layout;
        c.sort_period = 4; // exercise sorting on both sides of the snapshot

        let mut uninterrupted = Simulation::new(c.clone()).unwrap();
        uninterrupted.run(10);

        let mut sim = Simulation::new(c.clone()).unwrap();
        sim.run(6);
        let snapshot = sim.checkpoint();
        sim.run(37); // wander off; the snapshot must win
        sim.restore(&snapshot).unwrap();
        assert_eq!(sim.steps(), 6, "{layout:?}: restored step counter");
        sim.run(4);

        assert_eq!(
            sim.rho(),
            uninterrupted.rho(),
            "{layout:?}: rho must match bit-for-bit"
        );
        // For the AoS layout the SoA view lags the canonical array
        // between sorts; sync both before comparing.
        sim.sync_particles();
        uninterrupted.sync_particles();
        let (a, b) = (sim.particles(), uninterrupted.particles());
        assert_eq!(a.ix, b.ix, "{layout:?}: ix");
        assert_eq!(a.dx, b.dx, "{layout:?}: dx");
        assert_eq!(a.vx, b.vx, "{layout:?}: vx");
        assert_eq!(a.vy, b.vy, "{layout:?}: vy");
    }
}

/// A snapshot survives the disk roundtrip and restores into a *fresh*
/// simulation built from the same config.
#[test]
fn checkpoint_file_restores_into_fresh_simulation() {
    let c = cfg(1_000);
    let mut sim = Simulation::new(c.clone()).unwrap();
    sim.run(5);
    let dir = std::env::temp_dir().join("pic2d_resilience_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.ckpt");
    sim.save_checkpoint(&path).unwrap();

    let mut fresh = Simulation::new(c).unwrap();
    fresh.restore_from_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    fresh.run(3);
    sim.run(3);
    assert_eq!(fresh.rho(), sim.rho());
}

/// Any single corrupted byte must be rejected by the trailing checksum
/// (or, for the header fields, by the magic/version/fingerprint checks) —
/// never applied.
#[test]
fn corrupted_snapshots_are_rejected() {
    let mut sim = Simulation::new(cfg(500)).unwrap();
    sim.run(2);
    let good = sim.checkpoint();
    sim.restore(&good).expect("pristine snapshot restores");

    let n = good.len();
    for pos in [0, 9, n / 3, n / 2, n - 1] {
        let mut bad = good.clone();
        bad[pos] ^= 0x40;
        let err = sim
            .restore(&bad)
            .expect_err("corrupted snapshot must be rejected");
        assert!(
            matches!(err, PicError::Checkpoint(_)),
            "byte {pos}: unexpected error {err}"
        );
    }
    // Truncation is detected too.
    let err = sim.restore(&good[..n - 4]).unwrap_err();
    assert!(matches!(err, PicError::Checkpoint(_)), "{err}");

    // The failed restores must not have clobbered the live state.
    let mut twin = Simulation::new(cfg(500)).unwrap();
    twin.run(2);
    assert_eq!(sim.rho(), twin.rho());
}

// ---------------- crash faults: kill, shrink, buddy recovery ----------------

/// Per-logical-rank results: deposited ρ plus the full diagnostics history.
type LogicalResults = BTreeMap<usize, (Vec<f64>, Vec<(f64, f64, f64, f64)>)>;

/// Run `steps` of the distributed resilient runner on `ranks` ranks,
/// optionally under a fault plan, and collect every rank's outcome.
fn run_distributed(
    n: usize,
    steps: u64,
    ranks: usize,
    layout: ParticleLayout,
    path: KernelPath,
    plan: Option<FaultPlan>,
) -> Vec<(bool, usize, LogicalResults, FaultLog)> {
    let body = move |comm: &mut pic2d::minimpi::Comm| {
        let per = n / ranks;
        let make_cfg = move |id: usize| {
            let mut c = cfg(n);
            c.particle_layout = layout;
            c.kernel_path = path;
            c.keep_range = Some((id * per, (id + 1) * per));
            c
        };
        let rcfg = DistConfig {
            checkpoint_every: 2,
            max_recoveries: 2,
            heartbeat_timeout: None,
            recv_deadline: Some(Duration::from_secs(10)),
        };
        let out = run_resilient_distributed(comm, &make_cfg, steps, &rcfg).unwrap();
        let results: LogicalResults = out
            .sims
            .iter()
            .map(|(id, sim)| {
                let hist = sim
                    .diagnostics()
                    .history
                    .iter()
                    .map(|d| (d.time, d.kinetic, d.field, d.ex_mode))
                    .collect();
                (*id, (sim.rho().to_vec(), hist))
            })
            .collect();
        (out.survivor, out.recoveries, results, out.log)
    };
    match plan {
        Some(p) => World::run_with_faults(ranks, p, body),
        None => World::run(ranks, body),
    }
}

fn merge_logical(outs: &[(bool, usize, LogicalResults, FaultLog)]) -> LogicalResults {
    let mut all = LogicalResults::new();
    for (_, _, results, _) in outs {
        for (id, v) in results {
            assert!(
                all.insert(*id, v.clone()).is_none(),
                "logical rank {id} hosted twice"
            );
        }
    }
    all
}

/// The acceptance scenario, swept over the full layout matrix:
/// {AoS, SoA} × {Scalar, Lanes} × {1, 2, 4 ranks}. For multi-rank runs the
/// last rank is killed mid-run; the survivors must detect it, shrink,
/// restore the dead rank's slice from the buddy checkpoint, and finish with
/// ρ and diagnostics bit-exactly equal to the fault-free run. The 1-rank
/// run instead checks the runner degenerates to a plain simulation.
#[test]
fn crash_recovery_matrix_is_bit_exact() {
    let n = 1_200;
    let steps = 6u64;
    // Per-rank op schedule (checkpoint every 2 steps): init 2 ops, then
    // 4 ops per checkpointed step and 2 per plain step — op 13 lands in
    // step 3's reduction, one step past the committed step-2 checkpoint.
    let kill_op = 13;
    for layout in [ParticleLayout::Aos, ParticleLayout::Soa] {
        for path in [KernelPath::Scalar, KernelPath::Lanes] {
            let tag = format!("{layout:?}/{path:?}");

            // 1 rank: distributed runner ≡ plain simulation, bitwise.
            let solo = run_distributed(n, steps, 1, layout, path, None);
            assert!(solo[0].0, "{tag}: solo run survives");
            let solo_results = merge_logical(&solo);
            let mut c = cfg(n);
            c.particle_layout = layout;
            c.kernel_path = path;
            c.keep_range = Some((0, n));
            let mut plain = Simulation::new(c).unwrap();
            plain.run(steps as usize);
            assert_eq!(
                solo_results[&0].0,
                plain.rho(),
                "{tag}: 1-rank distributed run must equal the plain simulation"
            );

            for ranks in [2usize, 4] {
                let clean = run_distributed(n, steps, ranks, layout, path, None);
                assert!(clean.iter().all(|o| o.0), "{tag}/{ranks}: all survive");
                let clean_results = merge_logical(&clean);
                assert_eq!(clean_results.len(), ranks);

                let plan = FaultPlan::new(0xD1E).kill_rank(ranks - 1, kill_op);
                let faulty = run_distributed(n, steps, ranks, layout, path, Some(plan));
                assert!(
                    !faulty[ranks - 1].0,
                    "{tag}/{ranks}: killed rank reports non-survivor"
                );
                assert!(
                    faulty[..ranks - 1].iter().all(|o| o.0),
                    "{tag}/{ranks}: survivors finish"
                );
                assert!(
                    faulty.iter().any(|o| o.1 >= 1),
                    "{tag}/{ranks}: at least one recovery happened"
                );
                let faulty_results = merge_logical(&faulty);
                assert_eq!(
                    faulty_results.len(),
                    ranks,
                    "{tag}/{ranks}: every logical rank hosted after recovery"
                );
                for id in 0..ranks {
                    assert_eq!(
                        faulty_results[&id].0, clean_results[&id].0,
                        "{tag}/{ranks}: logical rank {id} ρ bit-exact after recovery"
                    );
                    assert_eq!(
                        faulty_results[&id].1, clean_results[&id].1,
                        "{tag}/{ranks}: logical rank {id} diagnostics history bit-exact"
                    );
                }
            }
        }
    }
}

/// The fault-event ledger must record the full causal story of a rank
/// death: kill → detect → shrink → rollback, in that order.
#[test]
fn ledger_records_kill_detect_shrink_rollback() {
    let plan = FaultPlan::new(0xBEEF).kill_rank(3, 13);
    let outs = run_distributed(
        1_200,
        6,
        4,
        ParticleLayout::Soa,
        KernelPath::Lanes,
        Some(plan),
    );
    let mut merged = FaultLog::new();
    for (_, _, _, log) in outs {
        merged.merge(log);
    }
    assert!(
        merged.has_sequence(&[
            FaultKind::Kill,
            FaultKind::Detect,
            FaultKind::Shrink,
            FaultKind::Rollback,
        ]),
        "ledger must order kill -> detect -> shrink -> rollback:\n{}",
        merged.to_json()
    );
    assert!(merged.count(FaultKind::Checkpoint) > 0);
    assert!(merged.count(FaultKind::BuddyStore) > 0);
    assert!(merged.count(FaultKind::Restore) > 0, "buddy restore logged");
    // The dump is parseable JSON in shape: array of flat objects.
    let json = merged.to_json();
    assert!(json.trim_start().starts_with('['));
    assert!(json.contains("\"kind\": \"kill\""));
    assert!(json.contains("\"kind\": \"shrink\""));
}

// ---------------- checkpoint fingerprint ----------------

/// Kernel path is hot-path *metadata*, not identity: a snapshot taken
/// under one kernel path restores into a simulation configured with the
/// other and carries its recorded path along — and thread count must NOT
/// invalidate it either. (Before the adaptive controller, kernel path was
/// part of the fingerprint; now the controller may legitimately flip it
/// mid-run, so the snapshot records it as resumable state instead.)
#[test]
fn fingerprint_gates_kernel_path_but_not_threads() {
    let mut scalar_cfg = cfg(800);
    scalar_cfg.kernel_path = KernelPath::Scalar;
    let mut sim = Simulation::new(scalar_cfg.clone()).unwrap();
    sim.run(2);
    let snap = sim.checkpoint();

    let mut lanes_cfg = scalar_cfg.clone();
    lanes_cfg.kernel_path = KernelPath::Lanes;
    assert_eq!(
        config_fingerprint(&scalar_cfg),
        config_fingerprint(&lanes_cfg),
        "kernel path must not change checkpoint identity"
    );
    let mut lanes_sim = Simulation::new(lanes_cfg).unwrap();
    lanes_sim
        .restore(&snap)
        .expect("hot-path knobs must not gate restores");
    // The restore adopts the snapshot's recorded kernel path, so the
    // resumed run replays the checkpointed trajectory bit-exactly.
    assert_eq!(lanes_sim.config().kernel_path, KernelPath::Scalar);
    assert_eq!(lanes_sim.steps(), 2);

    // Same physics, different pool width: the snapshot must still be
    // accepted and leave the simulation at the checkpointed step.
    let mut threaded_cfg = scalar_cfg.clone();
    threaded_cfg.threads = 2;
    let mut threaded = Simulation::new(threaded_cfg).unwrap();
    threaded
        .restore(&snap)
        .expect("thread count must not invalidate a snapshot");
    assert_eq!(threaded.steps(), 2);
}

// ---------------- watchdog ----------------

/// A healthy run under the watchdog completes with zero rollbacks and the
/// same physics as an unsupervised run.
#[test]
fn watchdog_is_transparent_on_a_healthy_run() {
    let mut plain = Simulation::new(cfg(2_000)).unwrap();
    plain.run(8);

    let mut watched = Simulation::new(cfg(2_000)).unwrap();
    let report = run_resilient(&mut watched, 8, &WatchdogConfig::default()).unwrap();
    assert_eq!(report.rollbacks, 0);
    assert_eq!(report.steps_executed, 8);
    assert_eq!(watched.rho(), plain.rho());
}
