//! Layout explorer — interactively inspect the cell orderings the paper
//! compares: print the index map of any layout on a small grid, the
//! unit-move locality statistics, and a cache-simulator A/B of sorted vs
//! drifted particle populations.
//!
//! ```sh
//! cargo run --release --example layout_explorer -- [side] [l4d-size]
//! ```

use pic2d::cachesim::{Hierarchy, HierarchyConfig, MemSink};
use pic2d::pic_core::PicError;
use pic2d::sfc::locality::{axis_move_stats, Axis};
use pic2d::sfc::{CellLayout, Hilbert, Morton, RowMajor, L4D};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), PicError> {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let l4d_size: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    if !side.is_power_of_two() {
        return Err(PicError::Config(format!(
            "side must be a power of two, got {side}"
        )));
    }

    // The layout constructors reject bad dimensions (e.g. a zero or
    // larger-than-grid l4d tile); `?` turns that into the exit diagnostic.
    let layouts: Vec<Box<dyn CellLayout>> = vec![
        Box::new(RowMajor::new(side, side)?),
        Box::new(L4D::new(side, side, l4d_size)?),
        Box::new(Morton::new(side, side)?),
        Box::new(Hilbert::new(side, side)?),
    ];

    for layout in &layouts {
        println!("\n=== {} ({side} x {side}) ===", layout.name());
        if side <= 32 {
            for ix in 0..side {
                for iy in 0..side {
                    print!("{:>5}", layout.encode(ix, iy));
                }
                println!();
            }
        }
        let x = axis_move_stats(layout.as_ref(), Axis::X, 8);
        let y = axis_move_stats(layout.as_ref(), Axis::Y, 8);
        println!(
            "x-moves: {:>5.1}% unit stride, mean |delta| {:>7.1}, max {}",
            100.0 * x.unit_fraction,
            x.mean_abs_delta,
            x.max_abs_delta
        );
        println!(
            "y-moves: {:>5.1}% unit stride, mean |delta| {:>7.1}, max {}",
            100.0 * y.unit_fraction,
            y.mean_abs_delta,
            y.max_abs_delta
        );

        // Cache A/B: a sorted sweep with small random walks, vs the same
        // walks an iteration later — how many extra L1 misses does each
        // layout pay per drifted access into a 32-B rho4 cell?
        let mut h = Hierarchy::new(HierarchyConfig::haswell());
        let ncells = side * side;
        let mut misses_near = 0u64;
        for cell in 0..ncells {
            let (ix, iy) = layout.decode(cell);
            // the particle drifted one cell in x (the bad axis for row-major)
            let drifted = layout.encode((ix + 1) & (side - 1), iy);
            let before = h.stats().level(0).misses;
            h.read(drifted as u64 * 32, 32);
            misses_near += h.stats().level(0).misses - before;
        }
        println!(
            "cachesim: {} L1 misses for {} one-cell-drifted accesses",
            misses_near, ncells
        );
    }

    println!("\n(The paper's Fig. 3/4 correspond to `Morton 8` and `L4D 128 8`.)");
    Ok(())
}
