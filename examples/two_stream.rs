//! Two-stream instability — the paper's second physics test case: two
//! counter-streaming electron beams drive an exponentially growing
//! electrostatic wave that eventually traps particles and saturates.
//!
//! ```sh
//! cargo run --release --example two_stream [-- --csv]
//! ```

use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::pic_core::PicError;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), PicError> {
    let csv = std::env::args().any(|a| a == "--csv");

    let mut cfg = PicConfig::two_stream(500_000);
    cfg.grid_nx = 64;
    cfg.grid_ny = 16;
    cfg.dt = 0.05;
    let mut sim = Simulation::new(cfg)?;

    let mut vx_spread_initial = None;
    let steps = 700; // t = 35
    for step in 0..steps {
        sim.step();
        if step == 0 {
            vx_spread_initial = Some(vx_percentiles(&sim));
        }
    }

    if csv {
        println!("t,ex_mode,field_energy,kinetic");
        for s in &sim.diagnostics().history {
            println!(
                "{},{:.6e},{:.6e},{:.6e}",
                s.time, s.ex_mode, s.field, s.kinetic
            );
        }
    }

    let d = sim.diagnostics();
    let growth = d
        .mode_amplitude_rate(5.0, 20.0)
        .ok_or_else(|| PicError::Diverged("no diagnostic samples in the fit window".into()))?;
    let h = &d.history;
    eprintln!("two-stream instability (v0 = 3, k = 0.2):");
    eprintln!("  mode amplitude t=0 : {:.3e}", h[0].ex_mode);
    eprintln!("  mode amplitude t=20: {:.3e}", h[400].ex_mode);
    eprintln!("  measured growth rate in [5,20]: {growth:.4} (must be > 0)");
    assert!(growth > 0.0, "two-stream must be unstable");

    // Saturation: the field stops growing exponentially late in the run.
    let late = d.mode_amplitude_rate(25.0, 35.0).unwrap_or(0.0);
    eprintln!("  late-time envelope rate: {late:.4} (saturation: well below the linear rate)");

    // Particle trapping heats the beams: the vx distribution spreads.
    // Set on the first loop iteration, and steps > 0.
    let (p10_0, p90_0) = vx_spread_initial.expect("recorded at step 0");
    let (p10, p90) = vx_percentiles(&sim);
    eprintln!("  beam spread (10th..90th vx percentile): initial [{p10_0:.2}, {p90_0:.2}] -> final [{p10:.2}, {p90:.2}]");
    Ok(())
}

/// 10th and 90th percentile of physical vx.
fn vx_percentiles(sim: &Simulation) -> (f64, f64) {
    let cfg = sim.config();
    let scale = if cfg.hoisted {
        sim.grid().dx() / cfg.dt
    } else {
        1.0
    };
    let mut v: Vec<f64> = sim.particles().vx.iter().map(|&u| u * scale).collect();
    v.sort_by(f64::total_cmp);
    (v[v.len() / 10], v[9 * v.len() / 10])
}
