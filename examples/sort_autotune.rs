//! Automatic sorting-period selection — the future work the paper names in
//! §IV-E (“it will be interesting to implement an automatic finding of this
//! optimal number”): measure short trial windows at several candidate
//! periods on the live simulation and pick the cheapest.
//!
//! ```sh
//! cargo run --release --example sort_autotune
//! ```

use pic2d::pic_core::autotune::autotune_sort_period;
use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::pic_core::PicError;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), PicError> {
    let mut cfg = PicConfig::landau_table1(500_000);
    cfg.sort_period = 0; // the tuner drives sorting during trials
    let mut sim = Simulation::new(cfg)?;

    // Let the particles randomize first so the trials see realistic drift.
    sim.run(10);

    let candidates = [5usize, 10, 20, 50, 100];
    println!("trialing sort periods {candidates:?} (window 100 steps each)...");
    let report = autotune_sort_period(&mut sim, &candidates, 100)?;

    println!("\n{:>8}  {:>14}", "period", "s/step");
    for t in &report.trials {
        let marker = if t.period == report.best_period {
            "  <== best"
        } else {
            ""
        };
        println!("{:>8}  {:>14.5}{marker}", t.period, t.secs_per_step);
    }
    println!(
        "\nselected sort period: {} (paper: 20 optimal on Haswell, 50 on Sandy Bridge —\nthe optimum is architecture- and scale-dependent, which is exactly why the\npaper wants it auto-tuned)",
        report.best_period
    );
    Ok(())
}
