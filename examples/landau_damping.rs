//! Landau damping — the paper's physics validation (§IV): evolve the
//! linear (α = 0.01) and nonlinear (α = 0.5) Landau test cases and compare
//! the measured damping rate of the fundamental E_x mode against the
//! analytic value γ ≈ −0.1533 for k = 0.5.
//!
//! ```sh
//! cargo run --release --example landau_damping [-- --csv]
//! ```
//!
//! With `--csv`, dumps `t, |E_x mode|, field energy` rows for plotting.

use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::pic_core::PicError;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), PicError> {
    let csv = std::env::args().any(|a| a == "--csv");

    // ---------- linear regime ----------
    let mut cfg = PicConfig::landau_table1(1_000_000);
    cfg.grid_nx = 64;
    cfg.grid_ny = 16;
    cfg.dt = 0.05;
    let mut sim = Simulation::new(cfg)?;
    sim.run(400); // t = 20

    if csv {
        println!("case,t,ex_mode,field_energy");
        for s in &sim.diagnostics().history {
            println!("linear,{},{:.6e},{:.6e}", s.time, s.ex_mode, s.field);
        }
    }

    let gamma = sim
        .diagnostics()
        .mode_envelope_rate(0.0, 12.0)
        .ok_or_else(|| PicError::Diverged("too few oscillation peaks to fit a rate".into()))?;
    eprintln!("linear Landau damping (alpha=0.01, k=0.5):");
    eprintln!("  measured gamma = {gamma:.4}");
    eprintln!("  analytic gamma = -0.1533");
    eprintln!(
        "  energy drift   = {:.2e}",
        sim.diagnostics().relative_energy_drift()
    );
    eprintln!(
        "  oscillation peaks: {:?}",
        sim.diagnostics()
            .mode_peaks(0.0, 12.0)
            .iter()
            .map(|(t, a)| format!("t={t:.2} A={a:.2e}"))
            .collect::<Vec<_>>()
    );

    // ---------- nonlinear regime ----------
    let mut cfg = PicConfig::landau_nonlinear(1_000_000);
    cfg.grid_nx = 64;
    cfg.grid_ny = 16;
    cfg.dt = 0.05;
    let mut sim = Simulation::new(cfg)?;
    sim.run(800); // t = 40

    if csv {
        for s in &sim.diagnostics().history {
            println!("nonlinear,{},{:.6e},{:.6e}", s.time, s.ex_mode, s.field);
        }
    }

    let no_peaks = || PicError::Diverged("too few oscillation peaks to fit a rate".into());
    let early = sim
        .diagnostics()
        .mode_envelope_rate(0.0, 10.0)
        .ok_or_else(no_peaks)?;
    let late = sim
        .diagnostics()
        .mode_envelope_rate(15.0, 35.0)
        .ok_or_else(no_peaks)?;
    eprintln!("\nnonlinear Landau damping (alpha=0.5):");
    eprintln!("  initial decay rate  = {early:.4}  (literature ~ -0.29)");
    eprintln!("  later envelope rate = {late:.4}  (rebound: rate increases)");
    assert!(late > early, "nonlinear case should rebound");
    Ok(())
}
