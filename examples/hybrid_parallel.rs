//! Hybrid parallelism demo — the paper's §V scheme end to end: several
//! `minimpi` ranks (processes), each running its slice of one global
//! particle population with multiple worker threads (OpenMP), communicating
//! only through the per-step allreduce of ρ.
//!
//! ```sh
//! cargo run --release --example hybrid_parallel -- [ranks] [threads-per-rank]
//! ```

use pic2d::minimpi::World;
use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::pic_core::PicError;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), PicError> {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let per_rank = 200_000usize;
    let steps = 50;

    println!("hybrid run: {ranks} rank(s) x {threads} thread(s), {per_rank} particles/rank");

    let results = World::run_timed(ranks, |comm| -> Result<(f64, f64, f64, f64), PicError> {
        let mut cfg = PicConfig::landau_table1(per_rank * comm.size());
        cfg.threads = threads;
        let r = comm.rank();
        cfg.keep_range = Some((r * per_rank, (r + 1) * per_rank));
        let mut sim = Simulation::new_with_reduce(cfg, |rho| comm.allreduce_sum(rho))?;
        let wall = Instant::now();
        for _ in 0..steps {
            sim.step_with_reduce(|rho| comm.allreduce_sum(rho));
        }
        let elapsed = wall.elapsed().as_secs_f64();
        Ok((
            elapsed,
            comm.comm_time(),
            sim.diagnostics().relative_energy_drift(),
            // steps > 0, so at least one diagnostic sample was recorded
            sim.diagnostics().history.last().expect("non-empty").ex_mode,
        ))
    });
    let (per_rank_results, mean_comm) = results;
    let per_rank_results: Vec<(f64, f64, f64, f64)> =
        per_rank_results.into_iter().collect::<Result<_, _>>()?;

    let total: f64 =
        per_rank_results.iter().map(|r| r.0).sum::<f64>() / per_rank_results.len() as f64;
    let drift = per_rank_results[0].2;
    let mode = per_rank_results[0].3;
    let mps = (per_rank * ranks * steps) as f64 / total / 1e6;

    println!("wall time          : {total:.2} s");
    println!(
        "communication time : {mean_comm:.3} s/rank ({:.1}% of total)",
        100.0 * mean_comm / total
    );
    println!("throughput         : {mps:.1} M particle-updates/s aggregate");
    println!("energy drift       : {drift:.2e} (identical on every rank)");
    println!("final |E_x| mode   : {mode:.3e}");
    println!("\nEvery rank holds the whole grid and solves Poisson redundantly;");
    println!("the only inter-rank traffic is the allreduce of the 128x128 rho array");
    println!("(the paper's no-domain-decomposition design, §V-A).");
    Ok(())
}
