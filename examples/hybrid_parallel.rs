//! Hybrid parallelism demo, both distribution models side by side:
//!
//! * **replicated** — the paper's §V scheme: every rank holds the whole
//!   grid and its slice of one global particle population, and the only
//!   inter-rank traffic is the per-step allreduce of ρ.
//! * **decomposed** — the `decomp` crate's spatial sharding: each rank owns
//!   a contiguous range of the space-filling-curve cell order, exchanges
//!   halo ρ with its neighbors, and migrates boundary-crossing particles;
//!   only the root holds the full grid (for the spectral solve).
//!
//! Each mode prints a per-rank census — particles and cells hosted, bytes
//! moved — so the structural difference is visible, not just the timings.
//!
//! ```sh
//! cargo run --release --example hybrid_parallel -- [ranks] [threads-per-rank]
//! ```

use pic2d::decomp::{DecompConfig, DecomposedSimulation};
use pic2d::minimpi::World;
use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::pic_core::PicError;
use pic2d::sfc::Ordering;
use std::process::ExitCode;
use std::time::Instant;

const PER_RANK: usize = 100_000;
const STEPS: usize = 30;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn config(ranks: usize, threads: usize) -> PicConfig {
    let mut cfg = PicConfig::landau_table1(PER_RANK * ranks);
    cfg.threads = threads;
    cfg.ordering = Ordering::Morton;
    cfg
}

/// One rank's summary, either mode.
struct Census {
    particles_start: usize,
    particles_end: usize,
    cells: usize,
    bytes: u64,
    wall: f64,
    comm: f64,
}

fn replicated(ranks: usize, threads: usize) -> Result<Vec<Census>, PicError> {
    World::run(ranks, move |comm| -> Result<Census, PicError> {
        let mut cfg = config(ranks, threads);
        let r = comm.rank();
        cfg.keep_range = Some((r * PER_RANK, (r + 1) * PER_RANK));
        let ncells = cfg.grid_nx * cfg.grid_ny;
        let mut sim = Simulation::new_with_reduce(cfg, |rho| {
            comm.try_allreduce_sum_tree(rho, 1 << 40).unwrap()
        })?;
        comm.reset_data_volume();
        let start = sim.particles().len();
        let wall = Instant::now();
        for step in 0..STEPS as u64 {
            sim.step_with_reduce(|rho| {
                comm.try_allreduce_sum_tree(rho, (1 << 40) + 1 + step)
                    .unwrap()
            });
        }
        Ok(Census {
            particles_start: start,
            particles_end: sim.particles().len(),
            cells: ncells, // the whole grid, redundantly
            bytes: comm.bytes_sent() + comm.bytes_received(),
            wall: wall.elapsed().as_secs_f64(),
            comm: comm.comm_time(),
        })
    })
    .into_iter()
    .collect()
}

fn decomposed(ranks: usize, threads: usize) -> Result<Vec<Census>, PicError> {
    let out = World::run(ranks, move |comm| {
        let cfg = config(ranks, threads);
        // Halo sizing: a particle moves v·dt/Δx cells per step; on the
        // Table I case that is ≈0.51·v, and Maxwellian tails at this
        // population reach |v| ≈ 5, so width 4 (|v| ≤ 7.8) has margin.
        let dcfg = DecompConfig {
            halo_width: 4,
            ..DecompConfig::default()
        };
        let mut dsim = DecomposedSimulation::new(cfg, dcfg, comm)
            .map_err(|e| PicError::Config(e.to_string()))?;
        comm.reset_data_volume();
        let start = dsim.local_particles();
        let wall = Instant::now();
        dsim.run(STEPS, comm)
            .map_err(|e| PicError::Config(e.to_string()))?;
        Ok::<Census, PicError>(Census {
            particles_start: start,
            particles_end: dsim.local_particles(),
            cells: dsim.local_cells(),
            bytes: dsim.stats().total_bytes(),
            wall: wall.elapsed().as_secs_f64(),
            comm: comm.comm_time(),
        })
    });
    out.into_iter().collect()
}

fn report(mode: &str, census: &[Census]) {
    println!("\n{mode}:");
    println!("  rank  particles start->end      cells     comm bytes");
    for (r, c) in census.iter().enumerate() {
        println!(
            "  {r:>4}  {:>9} -> {:>9}  {:>9}  {:>13}",
            c.particles_start, c.particles_end, c.cells, c.bytes
        );
    }
    let total_end: usize = census.iter().map(|c| c.particles_end).sum();
    let wall = census.iter().map(|c| c.wall).fold(0.0, f64::max);
    let comm = census.iter().map(|c| c.comm).sum::<f64>() / census.len() as f64;
    let mps = (total_end * STEPS) as f64 / wall / 1e6;
    println!("  total particles : {total_end} (conserved)");
    println!("  wall time       : {wall:.2} s  ({mps:.1} M particle-updates/s aggregate)");
    println!("  comm time       : {comm:.3} s/rank mean");
}

fn run() -> Result<(), PicError> {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    println!(
        "hybrid run: {ranks} rank(s) x {threads} thread(s), {PER_RANK} particles/rank, {STEPS} steps"
    );

    let repl = replicated(ranks, threads)?;
    report(
        "replicated (every rank holds the whole grid; rho allreduced)",
        &repl,
    );

    let dec = decomposed(ranks, threads)?;
    report(
        "decomposed (each rank owns an SFC cell range; halo + migration)",
        &dec,
    );

    let n = PER_RANK * ranks;
    let end: usize = dec.iter().map(|c| c.particles_end).sum();
    if end != n {
        return Err(PicError::Diverged(format!(
            "decomposed run lost particles: {end} of {n}"
        )));
    }

    println!("\nReplication keeps every census row identical — same cells everywhere,");
    println!("comm volume growing with the rank count (the paper's §V-A design).");
    println!("Decomposition shards the cells; its traffic is halo-sized, and the");
    println!("per-rank particle counts drift as particles migrate across subdomains.");
    Ok(())
}
