//! Quickstart: run the paper's Table I test case (linear Landau damping) at
//! laptop scale with the fully optimized data structures, then print the
//! energy budget and per-phase timings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pic2d::pic_core::sim::{PicConfig, Simulation};
use pic2d::pic_core::PicError;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), PicError> {
    // Table I scaled down: 128×128 grid, 500 k particles (paper: 50 M),
    // Morton-ordered redundant field arrays, SoA particles, split loops,
    // branchless position update, sorting every 20 iterations.
    let cfg = PicConfig::landau_table1(500_000);
    println!(
        "grid {}x{}  particles {}  ordering {}  dt {}",
        cfg.grid_nx, cfg.grid_ny, cfg.n_particles, cfg.ordering, cfg.dt
    );

    let mut sim = Simulation::new(cfg)?;
    let steps = 100;
    let wall = std::time::Instant::now();
    sim.run(steps);
    let elapsed = wall.elapsed().as_secs_f64();

    let d = sim.diagnostics();
    // `run(steps)` with steps > 0 records at least one sample.
    let first = d.history.first().expect("history non-empty after run");
    let last = d.history.last().expect("history non-empty after run");
    println!("\nenergy budget (normalized units):");
    println!(
        "  t=0   kinetic {:>12.4}  field {:>10.3e}  total {:>12.4}",
        first.kinetic,
        first.field,
        first.total()
    );
    println!(
        "  t={:<4} kinetic {:>12.4}  field {:>10.3e}  total {:>12.4}",
        last.time,
        last.kinetic,
        last.field,
        last.total()
    );
    println!("  relative drift {:.2e}", d.relative_energy_drift());

    let ph = sim.timers();
    println!("\nper-phase time over {steps} steps (seconds):");
    println!("  update-velocities {:>7.3}", ph.update_v);
    println!("  update-positions  {:>7.3}", ph.update_x);
    println!("  accumulate        {:>7.3}", ph.accumulate);
    println!("  sort              {:>7.3}", ph.sort);
    println!("  Poisson solve     {:>7.3}", ph.solve);
    println!("  layout conversion {:>7.3}", ph.convert);

    let mps = sim.config().n_particles as f64 * steps as f64 / elapsed / 1e6;
    println!("\nthroughput: {mps:.1} million particle-updates/s on one core");
    println!("(the paper reports 65 M/s on a Haswell core at 50 M particles)");
    Ok(())
}
