#!/bin/bash
cd /root/repo
set -x
R=results
cargo run --release -p pic-bench --bin physics_validation -- --particles 400000 > $R/physics_validation.txt 2>/dev/null
cargo run --release -p pic-bench --bin table3_loop_times -- --particles 500000 --iters 100 --l4d-sweep > $R/table3.txt 2>/dev/null
cargo run --release -p pic-bench --bin table4_opt_ladder -- --particles 500000 --iters 100 > $R/table4.txt 2>/dev/null
cargo run --release -p pic-bench --bin table5_per_particle_ns -- --particles 500000 --iters 100 --sort-sweep > $R/table5.txt 2>/dev/null
cargo run --release -p pic-bench --bin table6_strong_scaling_threads -- --particles 500000 --iters 30 --max-threads 4 > $R/table6.txt 2>/dev/null
cargo run --release -p pic-bench --bin table7_aos_soa_loops -- --particles 500000 --iters 30 --threads 2 > $R/table7.txt 2>/dev/null
cargo run --release -p pic-bench --bin fig7_weak_scaling -- --particles-per-rank 100000 --iters 10 --max-ranks 4 > $R/fig7.txt 2>/dev/null
cargo run --release -p pic-bench --bin fig8_memory_bandwidth -- --particles 500000 --iters 20 --max-threads 4 > $R/fig8.txt 2>/dev/null
cargo run --release -p pic-bench --bin fig9_strong_scaling_nodes -- --particles 800000 --grid 256 --iters 8 --max-ranks 4 > $R/fig9.txt 2>/dev/null
echo TIMED_DONE
